#ifndef BGC_OBS_OBS_H_
#define BGC_OBS_OBS_H_

// Low-overhead observability: scoped monotonic timers, named counters and
// gauges, and structured JSON reports (metric summary + trace events).
//
// Gating has three layers, cheapest first:
//   - Compile time: building with -DBGC_OBS_DISABLED (cmake -DBGC_OBS=OFF)
//     expands every BGC_* macro below to nothing; instrumented code is
//     byte-identical to uninstrumented code.
//   - Runtime collection: collection is off until SetMetricsEnabled(true) /
//     SetTraceEnabled(true) or InitFromEnvAtExit() sees BGC_METRICS /
//     BGC_TRACE. A disabled BGC_TRACE_SCOPE costs one relaxed atomic load;
//     a disabled BGC_COUNTER_ADD costs one load and one branch.
//   - Emission: reports go to stderr or a file only where the BGC_METRICS /
//     BGC_TRACE env values (or --profile front ends) direct them.
//
// Env var values: unset, "" or "0" = disabled; "1" or "stderr" = report to
// stderr at process exit; anything else = path of the report file.
// BGC_TRACE implies metric collection (the trace report embeds the metric
// summary).
//
// JSON schema (see DESIGN.md §8 "Observability"): a single object
//   {"schema":"bgc-obs-v1","wall_ns":N,
//    "counters":{name:int,...},"gauges":{name:float,...},
//    "timers":{name:{"count":N,"total_ns":N,"min_ns":N,"max_ns":N},...},
//    "trace":[{"name":s,"tid":N,"ts_ns":N,"dur_ns":N},...]}   (trace only)
//
// Naming convention: dotted lowercase. Timers prefixed "phase." form the
// per-phase accounting layer — scopes at that level never nest, so their
// totals partition wall-clock and PrintPhaseTable() can show a meaningful
// percentage column. Everything else ("tensor.gemm", "condense.gm.inner")
// may nest freely.
//
// This header is dependency-free (no src/core includes): src/core itself
// is instrumented, so obs must sit below it in the link order.

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace bgc::obs {

/// Monotonic clock in nanoseconds (std::chrono::steady_clock).
int64_t NowNs();

namespace internal {
inline constexpr uint32_t kMetricsBit = 1;
inline constexpr uint32_t kTraceBit = 2;
extern std::atomic<uint32_t> g_mode;
}  // namespace internal

/// True when counters/timers record (metrics mode or trace mode).
inline bool MetricsEnabled() {
  return internal::g_mode.load(std::memory_order_relaxed) != 0;
}

/// True when scope exits additionally append trace events.
inline bool TraceEnabled() {
  return (internal::g_mode.load(std::memory_order_relaxed) &
          internal::kTraceBit) != 0;
}

void SetMetricsEnabled(bool on);
/// Trace implies metric collection; disabling trace keeps metrics as-is.
void SetTraceEnabled(bool on);

/// Aggregate of one named timer.
struct TimerStats {
  long long count = 0;
  long long total_ns = 0;
  long long min_ns = 0;
  long long max_ns = 0;
};

/// A named duration aggregator. Handles are created by Registry::GetTimer,
/// never destroyed, and safe to Record() from any thread.
class Timer {
 public:
  /// Folds [start_ns, end_ns) into the aggregate; appends a trace event
  /// when tracing is enabled. Thread-safe, lock-free.
  void Record(int64_t start_ns, int64_t end_ns);

  TimerStats Snapshot() const;
  const std::string& name() const { return name_; }

 private:
  friend class Registry;
  explicit Timer(std::string name) : name_(std::move(name)) {}

  std::string name_;
  std::atomic<long long> count_{0};
  std::atomic<long long> total_ns_{0};
  std::atomic<long long> min_ns_{0};  // valid when count_ > 0
  std::atomic<long long> max_ns_{0};
};

/// A named monotonically-adjusted integer (bytes moved, nnz touched, cache
/// hits). Thread-safe, relaxed atomic adds.
class Counter {
 public:
  void Add(long long delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  long long value() const { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  friend class Registry;
  explicit Counter(std::string name) : name_(std::move(name)) {}

  std::string name_;
  std::atomic<long long> value_{0};
};

/// One flushed trace event (a completed timer scope).
struct TraceEvent {
  const Timer* timer = nullptr;
  int tid = 0;         // obs-assigned sequential thread id
  int64_t ts_ns = 0;   // relative to Registry start
  int64_t dur_ns = 0;
};

/// Process-wide, thread-safe home of every metric. Handles returned by
/// GetTimer/GetCounter are stable for the process lifetime (the registry is
/// deliberately leaked so atexit reporting is safe during shutdown).
class Registry {
 public:
  static Registry& Global();

  /// Handle for `name`, created on first use. O(log n) lookup; cache the
  /// pointer (the BGC_* macros do this with a static local).
  Timer* GetTimer(const std::string& name);
  Counter* GetCounter(const std::string& name);

  /// Last-writer-wins named double (e.g. configured thread count).
  void SetGauge(const std::string& name, double value);

  /// Adds to the calling thread's busy-time slot (reported as the
  /// "pool.thread.<tid>.busy_ns" counters). Used by the thread pool.
  void AddThreadBusyNs(int64_t ns);

  /// Snapshot of every timer whose name starts with `prefix`, in name
  /// order, zero-count timers skipped. Powers the serve layer's progress
  /// streaming (src/serve): a job running under phase tag "serve.j0007"
  /// samples prefix "serve.j0007." to watch its per-phase counts grow
  /// mid-run.
  std::vector<std::pair<std::string, TimerStats>> SnapshotTimersWithPrefix(
      const std::string& prefix) const;

  /// Metric summary JSON (schema above, no "trace" key).
  std::string MetricsJson() const;
  /// Full JSON including the "trace" event array.
  std::string TraceJson() const;

  /// Human-readable table of the "phase."-prefixed timers with their share
  /// of wall-clock since registry creation.
  void PrintPhaseTable(std::FILE* out) const;

  /// Nanoseconds since the registry was created (≈ first obs use).
  int64_t WallNs() const { return NowNs() - start_ns_; }

  /// Drops all metric values, trace events, and thread-busy slots (handles
  /// stay valid; their aggregates reset). For tests.
  void Reset();

  // Internal: called from Timer::Record when tracing is on.
  void AppendTraceEvent(const Timer* timer, int64_t start_ns, int64_t dur_ns);

 private:
  Registry();
  /// Serializes counters/gauges/timers (no braces); caller holds the lock.
  void AppendMetricsBodyLocked(std::string& out, int64_t wall_ns) const;
  struct Impl;
  Impl* impl_;       // leaked with the registry
  int64_t start_ns_;
};

/// Per-thread phase redirect. While a non-empty tag is installed on a
/// thread, "phase."-prefixed scopes opened by that thread record into
/// "<tag>.<rest>" instead of the shared phase timer. The grid scheduler
/// (src/eval/scheduler.h) tags each worker with its unit id, so timers of
/// concurrently-running units land in per-unit families and the "phase."
/// table keeps partitioning wall-clock even when units overlap. The
/// previous tag is returned so nested scopes can restore it.
std::string SetThreadPhaseTag(std::string tag);

namespace internal {
/// Applies the calling thread's phase tag to `timer` (identity when no tag
/// is set or the timer is not "phase."-prefixed).
Timer* MaybeRedirectPhase(Timer* timer);
}  // namespace internal

/// RAII thread phase tag; restores the previous tag on destruction.
class ScopedPhaseTag {
 public:
  explicit ScopedPhaseTag(std::string tag)
      : previous_(SetThreadPhaseTag(std::move(tag))) {}
  ~ScopedPhaseTag() { SetThreadPhaseTag(std::move(previous_)); }
  ScopedPhaseTag(const ScopedPhaseTag&) = delete;
  ScopedPhaseTag& operator=(const ScopedPhaseTag&) = delete;

 private:
  std::string previous_;
};

/// RAII wall-clock scope bound to a Timer handle. When metrics are off at
/// construction the destructor does nothing (cost: one relaxed load).
class ScopedTimer {
 public:
  explicit ScopedTimer(Timer* timer)
      : timer_(MetricsEnabled() ? internal::MaybeRedirectPhase(timer)
                                : nullptr),
        start_ns_(timer_ != nullptr ? NowNs() : 0) {}
  ~ScopedTimer() {
    if (timer_ != nullptr) timer_->Record(start_ns_, NowNs());
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Timer* timer_;
  int64_t start_ns_;
};

/// Reads BGC_METRICS / BGC_TRACE, enables the corresponding collection
/// modes, and registers a process-exit hook that writes each report to its
/// destination. Idempotent. Called by the CLI/bench front ends; library
/// code never emits on its own.
void InitFromEnvAtExit();

/// Overrides the metrics report destination ("stderr" or a path) and
/// enables metric collection; used by --profile style flags. Registers the
/// same process-exit hook.
void EmitMetricsAtExit(const std::string& dest);
/// Same for the trace report (enables tracing too).
void EmitTraceAtExit(const std::string& dest);
/// Also print the per-phase table to stderr at process exit.
void PrintPhaseTableAtExit();

/// Peak resident set size of this process in bytes (VmHWM from
/// /proc/self/status). Returns 0 where that interface does not exist
/// (non-Linux). Reported as the proc.peak_rss_bytes gauge in the metrics
/// JSON and at the foot of the phase table.
long long ReadPeakRssBytes();

/// Resets the kernel's peak-RSS watermark (writes "5" to
/// /proc/self/clear_refs) so ReadPeakRssBytes() reflects only memory
/// touched after this call — the primitive behind per-phase memory-budget
/// assertions (tests/outofcore_test.cc). Returns false where the
/// interface does not exist (non-Linux) or the write fails.
bool ResetPeakRss();

}  // namespace bgc::obs

#if defined(BGC_OBS_DISABLED)

#define BGC_TRACE_SCOPE(name)
#define BGC_COUNTER_ADD(name, delta)
#define BGC_GAUGE_SET(name, value)

#else

#define BGC_OBS_CONCAT2(a, b) a##b
#define BGC_OBS_CONCAT(a, b) BGC_OBS_CONCAT2(a, b)

/// Times the enclosing scope into the named timer. `name` must be a string
/// literal (the handle is resolved once per call site).
#define BGC_TRACE_SCOPE(name)                                          \
  static ::bgc::obs::Timer* BGC_OBS_CONCAT(bgc_obs_timer_, __LINE__) = \
      ::bgc::obs::Registry::Global().GetTimer(name);                   \
  ::bgc::obs::ScopedTimer BGC_OBS_CONCAT(bgc_obs_scope_, __LINE__)(    \
      BGC_OBS_CONCAT(bgc_obs_timer_, __LINE__))

/// Adds `delta` to the named counter when metrics are enabled.
#define BGC_COUNTER_ADD(name, delta)                                \
  do {                                                              \
    if (::bgc::obs::MetricsEnabled()) {                             \
      static ::bgc::obs::Counter* bgc_obs_counter =                 \
          ::bgc::obs::Registry::Global().GetCounter(name);          \
      bgc_obs_counter->Add(delta);                                  \
    }                                                               \
  } while (0)

/// Sets the named gauge when metrics are enabled.
#define BGC_GAUGE_SET(name, value)                                  \
  do {                                                              \
    if (::bgc::obs::MetricsEnabled()) {                             \
      ::bgc::obs::Registry::Global().SetGauge(name, value);         \
    }                                                               \
  } while (0)

#endif  // BGC_OBS_DISABLED

#endif  // BGC_OBS_OBS_H_
