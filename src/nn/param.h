#ifndef BGC_NN_PARAM_H_
#define BGC_NN_PARAM_H_

#include <vector>

#include "src/tensor/matrix.h"

namespace bgc::nn {

/// A trainable parameter: persistent value + last gradient. Optimizer state
/// (Adam moments) is owned by the optimizer, keyed by parameter identity,
/// so the same Param can move between optimizers without carrying state.
struct Param {
  Matrix value;
  Matrix grad;

  Param() = default;
  explicit Param(Matrix v) : value(std::move(v)) {}

  void ZeroGrad() {
    if (grad.rows() != value.rows() || grad.cols() != value.cols()) {
      grad = Matrix(value.rows(), value.cols());
    } else {
      grad.Fill(0.0f);
    }
  }
};

}  // namespace bgc::nn

#endif  // BGC_NN_PARAM_H_
