#include "src/nn/optimizer.h"

#include <cmath>
#include <utility>

#include "src/core/check.h"

namespace bgc::nn {

Adam::Adam(float lr, float weight_decay, float beta1, float beta2, float eps)
    : lr_(lr), weight_decay_(weight_decay), beta1_(beta1), beta2_(beta2),
      eps_(eps) {}

void Adam::Step(const std::vector<Param*>& params) {
  ++t_;
  const float bias1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bias2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (Param* p : params) {
    BGC_CHECK(p != nullptr);
    BGC_CHECK_EQ(p->grad.size(), p->value.size());
    Moments& mo = state_[p];
    if (mo.m.size() != p->value.size()) {
      mo.m = Matrix(p->value.rows(), p->value.cols());
      mo.v = Matrix(p->value.rows(), p->value.cols());
    }
    for (int i = 0; i < p->value.size(); ++i) {
      const float g = p->grad.data()[i] + weight_decay_ * p->value.data()[i];
      float& m = mo.m.data()[i];
      float& v = mo.v.data()[i];
      m = beta1_ * m + (1.0f - beta1_) * g;
      v = beta2_ * v + (1.0f - beta2_) * g * g;
      const float mhat = m / bias1;
      const float vhat = v / bias2;
      p->value.data()[i] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

void Adam::Reset() {
  state_.clear();
  t_ = 0;
}

Adam::ParamState Adam::ExportState(const Param* p) const {
  auto it = state_.find(p);
  if (it == state_.end()) return {};
  return {it->second.m, it->second.v};
}

void Adam::RestoreState(const Param* p, ParamState state) {
  BGC_CHECK(p != nullptr);
  if (state.m.empty()) {
    state_.erase(p);
    return;
  }
  BGC_CHECK_EQ(state.m.size(), p->value.size());
  BGC_CHECK_EQ(state.v.size(), p->value.size());
  Moments& mo = state_[p];
  mo.m = std::move(state.m);
  mo.v = std::move(state.v);
}

void Sgd::Step(const std::vector<Param*>& params) {
  for (Param* p : params) {
    BGC_CHECK(p != nullptr);
    BGC_CHECK_EQ(p->grad.size(), p->value.size());
    for (int i = 0; i < p->value.size(); ++i) {
      const float g = p->grad.data()[i] + weight_decay_ * p->value.data()[i];
      p->value.data()[i] -= lr_ * g;
    }
  }
}

}  // namespace bgc::nn
