#include "src/nn/sampler.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "src/core/check.h"
#include "src/core/rng.h"
#include "src/obs/obs.h"

namespace bgc::nn {
namespace {

// Purpose constants keep the sampler's streams decoupled from each other
// and from the victim/attack/dropout streams (which mix their own tags).
constexpr uint64_t kEpochOrderPurpose = 0x5a3d1e9b70c4f281ULL;
constexpr uint64_t kBatchSamplePurpose = 0xc1b2a6e84d5f3907ULL;

}  // namespace

uint64_t MixSeed(uint64_t a, uint64_t b) {
  // splitmix64 finalizer over the combined words; good avalanche so that
  // nearby (seed, epoch, batch) triples land on unrelated streams.
  uint64_t z = a + 0x9e3779b97f4a7c15ULL * (b + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

NeighborSampler::NeighborSampler(const graph::NeighborSource& graph,
                                 SamplerConfig config, std::vector<int> seeds)
    : graph_(&graph), config_(std::move(config)), seeds_(std::move(seeds)) {
  BGC_CHECK_MSG(config_.batch_size > 0,
                "NeighborSampler: batch_size must be positive");
  BGC_CHECK_MSG(!config_.fanout.empty(),
                "NeighborSampler: fanout must name at least one hop");
  for (int f : config_.fanout) {
    BGC_CHECK_MSG(f > 0, "NeighborSampler: fanout entries must be positive");
  }
  for (int s : seeds_) {
    BGC_CHECK_MSG(s >= 0 && s < graph_->num_nodes(),
                  "NeighborSampler: seed node out of range");
  }
}

int NeighborSampler::num_batches() const {
  const int n = num_seeds();
  return (n + config_.batch_size - 1) / config_.batch_size;
}

const std::vector<int>& NeighborSampler::EpochOrder(int epoch) const {
  if (cached_epoch_ != epoch) {
    cached_order_ = seeds_;
    Rng rng(MixSeed(MixSeed(config_.seed, kEpochOrderPurpose),
                    static_cast<uint64_t>(epoch)));
    rng.Shuffle(cached_order_);
    cached_epoch_ = epoch;
  }
  return cached_order_;
}

MiniBatch NeighborSampler::Batch(int epoch, int batch) const {
  BGC_CHECK_MSG(batch >= 0 && batch < num_batches(),
                "NeighborSampler: batch index out of range");
  const std::vector<int>& order = EpochOrder(epoch);
  const int begin = batch * config_.batch_size;
  const int end = std::min<int>(begin + config_.batch_size,
                                static_cast<int>(order.size()));
  std::vector<int> batch_seeds(order.begin() + begin, order.begin() + end);
  const uint64_t purpose =
      MixSeed(kBatchSamplePurpose, static_cast<uint64_t>(epoch));
  return SampleForSeeds(batch_seeds, purpose, batch);
}

MiniBatch NeighborSampler::SampleForSeeds(const std::vector<int>& seeds,
                                          uint64_t purpose, int batch) const {
  BGC_TRACE_SCOPE("nn.sampler.batch");
  Rng rng(MixSeed(MixSeed(config_.seed, purpose),
                  static_cast<uint64_t>(batch)));

  MiniBatch mb;
  mb.num_seeds = static_cast<int>(seeds.size());
  std::unordered_map<int, int> local;  // global id -> local id
  local.reserve(seeds.size() * (config_.fanout[0] + 1));
  for (int s : seeds) {
    BGC_CHECK_MSG(s >= 0 && s < graph_->num_nodes(),
                  "NeighborSampler: seed node out of range");
    BGC_CHECK_MSG(local.emplace(s, static_cast<int>(mb.nodes.size())).second,
                  "NeighborSampler: duplicate seed in batch");
    mb.nodes.push_back(s);
    mb.hop.push_back(0);
  }

  // Frontier expansion: hop l samples fanout[l] neighbors of every node
  // that entered at hop l. Edges are recorded in both directions over
  // local ids and deduplicated below, so the batch adjacency stays
  // symmetric and FromEdges (which *sums* duplicates) sees each
  // coordinate exactly once.
  std::vector<std::pair<int, int>> edges;  // local (u, v), u != v
  std::vector<int> cols;
  std::vector<float> vals;
  size_t frontier_begin = 0;
  for (size_t l = 0; l < config_.fanout.size(); ++l) {
    const size_t frontier_end = mb.nodes.size();
    const int fanout = config_.fanout[l];
    for (size_t i = frontier_begin; i < frontier_end; ++i) {
      const int u_global = mb.nodes[i];
      const int u_local = static_cast<int>(i);
      const int deg = graph_->degree(u_global);
      if (deg == 0) continue;
      graph_->Row(u_global, &cols, &vals);
      auto visit = [&](int v_global) {
        auto [it, inserted] =
            local.emplace(v_global, static_cast<int>(mb.nodes.size()));
        if (inserted) {
          mb.nodes.push_back(v_global);
          mb.hop.push_back(static_cast<int>(l) + 1);
        }
        const int v_local = it->second;
        if (v_local == u_local) return;  // stored self-loop; skip
        edges.emplace_back(u_local, v_local);
        edges.emplace_back(v_local, u_local);
      };
      if (deg <= fanout) {
        for (int v : cols) visit(v);
      } else {
        for (int pick : rng.SampleWithoutReplacement(deg, fanout)) {
          visit(cols[pick]);
        }
      }
    }
    frontier_begin = frontier_end;
  }

  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  const int n_local = static_cast<int>(mb.nodes.size());
  std::vector<graph::Edge> coo;
  coo.reserve(edges.size());
  for (const auto& [u, v] : edges) {
    coo.push_back({u, v, 1.0f});
  }
  mb.adj = graph::CsrMatrix::FromEdges(n_local, n_local, coo,
                                       /*symmetrize=*/false);

  BGC_COUNTER_ADD("nn.sampler.batches", 1);
  BGC_COUNTER_ADD("nn.sampler.nodes", n_local);
  BGC_COUNTER_ADD("nn.sampler.edges", static_cast<long long>(edges.size()));
  return mb;
}

}  // namespace bgc::nn
