#ifndef BGC_NN_OPTIMIZER_H_
#define BGC_NN_OPTIMIZER_H_

#include <unordered_map>
#include <vector>

#include "src/nn/param.h"

namespace bgc::nn {

/// Adam optimizer (Kingma & Ba) with optional L2 weight decay added to the
/// gradient, matching the PyTorch `Adam(weight_decay=...)` convention used
/// by GCond's released configuration.
class Adam {
 public:
  explicit Adam(float lr, float weight_decay = 0.0f, float beta1 = 0.9f,
                float beta2 = 0.999f, float eps = 1e-8f);

  /// Applies one update to every param from its `grad`.
  void Step(const std::vector<Param*>& params);

  /// Drops moment state (e.g. when parameters are re-initialized).
  void Reset();

  float lr() const { return lr_; }
  void set_lr(float lr) { lr_ = lr; }

  /// Serializable per-parameter moment state, used by checkpointing
  /// (src/store): a resumed optimizer must continue bit-identically.
  struct ParamState {
    Matrix m;
    Matrix v;
  };

  /// Global step counter (drives bias correction).
  long long step_count() const { return t_; }
  void set_step_count(long long t) { t_ = t; }

  /// Moments of `p`; empty matrices when the param has no state yet.
  ParamState ExportState(const Param* p) const;

  /// Installs checkpointed moments for `p` (empty state clears it).
  void RestoreState(const Param* p, ParamState state);

 private:
  struct Moments {
    Matrix m;
    Matrix v;
  };

  float lr_;
  float weight_decay_;
  float beta1_;
  float beta2_;
  float eps_;
  long long t_ = 0;
  std::unordered_map<const Param*, Moments> state_;
};

/// Plain SGD, used where the paper's inner loops call for simple gradient
/// steps (surrogate refresh between condensation updates).
class Sgd {
 public:
  explicit Sgd(float lr, float weight_decay = 0.0f)
      : lr_(lr), weight_decay_(weight_decay) {}

  void Step(const std::vector<Param*>& params);

  float lr() const { return lr_; }

 private:
  float lr_;
  float weight_decay_;
};

}  // namespace bgc::nn

#endif  // BGC_NN_OPTIMIZER_H_
