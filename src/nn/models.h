#ifndef BGC_NN_MODELS_H_
#define BGC_NN_MODELS_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/autograd/tape.h"
#include "src/core/status.h"
#include "src/graph/csr.h"
#include "src/nn/param.h"

namespace bgc::nn {

/// Normalized propagation operators derived from one raw adjacency. The
/// caller owns this object and must keep it alive for as long as any tape
/// built against it (tape SpMM nodes hold pointers into it).
struct Propagators {
  graph::CsrMatrix gcn;   // D̂^{-1/2}(A+I)D̂^{-1/2}
  graph::CsrMatrix row;   // D^{-1} A (mean aggregation)
  graph::CsrMatrix cheb;  // -D^{-1/2} A D^{-1/2}
  graph::CsrMatrix sum;   // A itself (GIN sum aggregation)
};

/// Computes all three operators for `adj` (raw symmetric adjacency).
Propagators MakePropagators(const graph::CsrMatrix& adj);

/// Hyper-parameters shared by every architecture. Architecture-specific
/// fields are ignored by models that do not use them.
struct GnnConfig {
  int in_dim = 0;
  int hidden_dim = 64;
  int out_dim = 0;
  int num_layers = 2;    // GCN / SAGE / MLP / Cheby depth
  float dropout = 0.5f;
  int sgc_k = 2;         // SGC propagation steps
  int cheb_k = 2;        // Chebyshev polynomial order
  float appnp_alpha = 0.1f;
  int appnp_k = 10;
};

/// Base class for node-classification GNNs.
///
/// A model owns persistent Params. Each call to Forward() registers those
/// params as fresh tape inputs, builds the logits expression, and remembers
/// the (Param, Var) binding; after tape.Backward() the caller invokes
/// CollectGrads() to copy tape gradients back into the Params.
class GnnModel {
 public:
  explicit GnnModel(const GnnConfig& config) : config_(config) {}
  virtual ~GnnModel() = default;
  GnnModel(const GnnModel&) = delete;
  GnnModel& operator=(const GnnModel&) = delete;

  /// (Re)initializes all weights.
  virtual void Init(Rng& rng) = 0;

  /// Builds the logits (n×out_dim) for features `x` under operators
  /// `props`. `training` enables dropout.
  virtual ag::Var Forward(ag::Tape& tape, const Propagators& props, ag::Var x,
                          Rng& rng, bool training) = 0;

  /// Named trainable parameters in a stable, architecture-defined order:
  /// the registry behind optimizer steps and src/store state-dict
  /// serialization. Names are hierarchical ("layers.0.weight").
  virtual std::vector<std::pair<std::string, Param*>> NamedParams() = 0;

  /// All trainable parameters, in NamedParams() order.
  std::vector<Param*> Params();

  /// Copies of every parameter value keyed by name (a "state dict").
  std::vector<std::pair<std::string, Matrix>> StateDict();

  /// Restores parameter values from `state`. Fails (without touching any
  /// parameter) unless `state` covers exactly this model's parameters with
  /// matching names and shapes.
  Status LoadStateDict(
      const std::vector<std::pair<std::string, Matrix>>& state);

  virtual std::string name() const = 0;

  /// Copies tape gradients of the last Forward() into each Param::grad.
  void CollectGrads(ag::Tape& tape);

  const GnnConfig& config() const { return config_; }

 protected:
  /// Registers `p` as a tape input and records the binding.
  ag::Var Bind(ag::Tape& tape, Param& p);
  /// Must be called at the top of every Forward() override.
  void BeginForward();

  GnnConfig config_;

 private:
  std::vector<std::pair<Param*, ag::Var>> bound_;
};

/// Architectures evaluated in the paper (Table 4): "gcn", "sage", "sgc",
/// "mlp", "appnp", "cheby" — plus "gin" (Xu et al., sum aggregation) as an
/// extension. Aborts on unknown names.
std::unique_ptr<GnnModel> MakeModel(const std::string& arch,
                                    const GnnConfig& config, Rng& rng);

/// Names accepted by MakeModel, in the paper's Table 4 order.
std::vector<std::string> SupportedArchitectures();

}  // namespace bgc::nn

#endif  // BGC_NN_MODELS_H_
