#ifndef BGC_NN_TRAINER_H_
#define BGC_NN_TRAINER_H_

#include <memory>
#include <vector>

#include "src/nn/models.h"
#include "src/nn/optimizer.h"
#include "src/nn/sampler.h"

namespace bgc::nn {

/// Full-batch training configuration. Defaults follow the GCN paper /
/// GCond's evaluation stage (Adam, lr 0.01, weight decay 5e-4).
struct TrainConfig {
  int epochs = 200;
  float lr = 0.01f;
  float weight_decay = 5e-4f;
  uint64_t seed = 0;
};

/// Trains `model` on graph (adj, x) with cross-entropy over `train_idx`
/// (all nodes when empty). `labels[i]` must be valid for every trained row.
/// Returns the final training loss.
float TrainNodeClassifier(GnnModel& model, const graph::CsrMatrix& adj,
                          const Matrix& x, const std::vector<int>& labels,
                          const std::vector<int>& train_idx,
                          const TrainConfig& config);

/// Inference logits (dropout disabled).
Matrix PredictLogits(GnnModel& model, const graph::CsrMatrix& adj,
                     const Matrix& x);

/// Fraction of rows in `idx` (all rows when empty) whose argmax matches
/// `labels`.
double Accuracy(const Matrix& logits, const std::vector<int>& labels,
                const std::vector<int>& idx);

/// Neighbor-sampled minibatch training configuration. The fanout/batch
/// knobs feed a NeighborSampler; lr/weight_decay/seed mirror TrainConfig.
struct MinibatchTrainConfig {
  int epochs = 30;
  float lr = 0.01f;
  float weight_decay = 5e-4f;
  uint64_t seed = 0;
  std::vector<int> fanout{10, 5};
  int batch_size = 512;
};

/// Epoch-at-a-time sampled trainer over any NeighborSource/FeatureSource
/// pair — an in-RAM dataset or an out-of-core data::MmapDataset. Exposed
/// as a class (rather than one closed loop) so checkpointing (src/store)
/// can snapshot the model, optimizer, and dropout stream between epochs.
///
/// Determinism contract (DESIGN.md §13): given the same config, the
/// trained weights are bit-identical across reruns, across
/// BGC_NUM_THREADS, and across the heap and mmap data paths. Resuming
/// from an epoch-boundary checkpoint continues the identical stream
/// because batches are pure functions of (seed, epoch, batch) and only
/// the model/optimizer/dropout-rng state carries across epochs.
class MinibatchTrainer {
 public:
  /// Borrows every reference; all must outlive the trainer. `train_idx`
  /// lists the global ids trained on (must be non-empty).
  MinibatchTrainer(GnnModel& model, const graph::NeighborSource& graph,
                   const graph::FeatureSource& features,
                   const std::vector<int>& labels,
                   const std::vector<int>& train_idx,
                   const MinibatchTrainConfig& config);

  /// Runs every batch of `epoch` (sample → gather → forward → Adam step);
  /// returns the mean batch loss.
  float RunEpoch(int epoch);

  GnnModel& model() { return *model_; }
  Adam& optimizer() { return optimizer_; }
  Rng& dropout_rng() { return dropout_rng_; }
  const MinibatchTrainConfig& config() const { return config_; }
  int num_batches() const { return sampler_.num_batches(); }
  const NeighborSampler& sampler() const { return sampler_; }

 private:
  GnnModel* model_;
  const graph::FeatureSource* features_;
  const std::vector<int>* labels_;
  MinibatchTrainConfig config_;
  NeighborSampler sampler_;
  Adam optimizer_;
  Rng dropout_rng_;
  ag::Tape tape_;
};

/// Runs `config.epochs` epochs of sampled training; returns the final
/// epoch's mean batch loss.
float TrainNodeClassifierMinibatch(GnnModel& model,
                                   const graph::NeighborSource& graph,
                                   const graph::FeatureSource& features,
                                   const std::vector<int>& labels,
                                   const std::vector<int>& train_idx,
                                   const MinibatchTrainConfig& config);

/// Sampled inference: logits for exactly the rows of `idx` (returned in
/// `idx` order, idx.size()×out_dim), each computed on a neighbor-sampled
/// subgraph. Deterministic for fixed (fanout, batch_size, seed); dropout
/// disabled.
Matrix PredictLogitsSampled(GnnModel& model,
                            const graph::NeighborSource& graph,
                            const graph::FeatureSource& features,
                            const std::vector<int>& idx,
                            const std::vector<int>& fanout, int batch_size,
                            uint64_t seed);

}  // namespace bgc::nn

#endif  // BGC_NN_TRAINER_H_
