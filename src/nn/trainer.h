#ifndef BGC_NN_TRAINER_H_
#define BGC_NN_TRAINER_H_

#include <vector>

#include "src/nn/models.h"

namespace bgc::nn {

/// Full-batch training configuration. Defaults follow the GCN paper /
/// GCond's evaluation stage (Adam, lr 0.01, weight decay 5e-4).
struct TrainConfig {
  int epochs = 200;
  float lr = 0.01f;
  float weight_decay = 5e-4f;
  uint64_t seed = 0;
};

/// Trains `model` on graph (adj, x) with cross-entropy over `train_idx`
/// (all nodes when empty). `labels[i]` must be valid for every trained row.
/// Returns the final training loss.
float TrainNodeClassifier(GnnModel& model, const graph::CsrMatrix& adj,
                          const Matrix& x, const std::vector<int>& labels,
                          const std::vector<int>& train_idx,
                          const TrainConfig& config);

/// Inference logits (dropout disabled).
Matrix PredictLogits(GnnModel& model, const graph::CsrMatrix& adj,
                     const Matrix& x);

/// Fraction of rows in `idx` (all rows when empty) whose argmax matches
/// `labels`.
double Accuracy(const Matrix& logits, const std::vector<int>& labels,
                const std::vector<int>& idx);

}  // namespace bgc::nn

#endif  // BGC_NN_TRAINER_H_
