#ifndef BGC_NN_SAMPLER_H_
#define BGC_NN_SAMPLER_H_

// Deterministic GraphSAGE-style neighbor sampling for minibatch training
// over a NeighborSource (in-RAM CSR or mmap-backed dataset).
//
// Each batch is the union subgraph of its seed nodes plus `fanout[l]`
// sampled neighbors per node at hop l, re-symmetrized over local ids, so
// every existing architecture's Forward() runs unchanged on the batch via
// MakePropagators(batch.adj).
//
// Determinism contract (DESIGN.md §13, enforced by tests/sampler_test.cc):
// Batch(epoch, b) is a pure function of (config.seed, epoch, b) and the
// graph — it draws from a per-batch Rng stream derived by splitmix-style
// mixing, never from a shared mutable stream, and samples serially. Batches
// are therefore bit-identical across reruns, across BGC_NUM_THREADS, and
// independent of the order in which batches are requested. The sampler
// stream is decoupled from the victim/attack streams the same way PR 4
// separated those from each other: a dedicated purpose constant is mixed
// into every derivation.

#include <cstdint>
#include <vector>

#include "src/graph/csr.h"
#include "src/graph/partition.h"

namespace bgc::nn {

struct SamplerConfig {
  /// fanout[l] = max neighbors kept per node at hop l (seeds are hop 0).
  /// A node with degree <= fanout[l] keeps all its neighbors.
  std::vector<int> fanout{10, 5};
  int batch_size = 512;
  uint64_t seed = 0;
};

/// One sampled minibatch: a local-id subgraph whose first `num_seeds`
/// nodes are the batch's seed nodes.
struct MiniBatch {
  std::vector<int> nodes;  // local id -> global id; seeds first
  int num_seeds = 0;
  std::vector<int> hop;    // local id -> hop at which the node entered
  graph::CsrMatrix adj;    // symmetric sampled subgraph over local ids
};

/// Splitmix64-style combiner for deriving decoupled per-batch streams.
uint64_t MixSeed(uint64_t a, uint64_t b);

class NeighborSampler {
 public:
  /// `graph` is borrowed and must outlive the sampler. `seeds` are the
  /// global node ids batches draw from (typically the train split).
  NeighborSampler(const graph::NeighborSource& graph, SamplerConfig config,
                  std::vector<int> seeds);

  int num_seeds() const { return static_cast<int>(seeds_.size()); }
  int num_batches() const;
  const SamplerConfig& config() const { return config_; }

  /// The sampled batch `batch` of epoch `epoch` (seed order reshuffles
  /// every epoch). Pure function of (config.seed, epoch, batch); see the
  /// determinism contract above. Not thread-safe (caches the epoch
  /// permutation), matching its serial use in the trainer.
  MiniBatch Batch(int epoch, int batch) const;

  /// A batch over caller-given seed nodes in the given order (no epoch
  /// shuffle); used for sampled inference. `purpose` decouples the
  /// inference stream from training batches.
  MiniBatch SampleForSeeds(const std::vector<int>& seeds, uint64_t purpose,
                           int batch) const;

 private:
  const std::vector<int>& EpochOrder(int epoch) const;

  const graph::NeighborSource* graph_;
  SamplerConfig config_;
  std::vector<int> seeds_;
  // Cached per-epoch permutation (recomputed when `epoch` changes).
  mutable int cached_epoch_ = -1;
  mutable std::vector<int> cached_order_;
};

}  // namespace bgc::nn

#endif  // BGC_NN_SAMPLER_H_
