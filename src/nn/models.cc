#include "src/nn/models.h"

#include <unordered_map>

#include "src/core/check.h"

namespace bgc::nn {

Propagators MakePropagators(const graph::CsrMatrix& adj) {
  Propagators p;
  p.gcn = graph::GcnNormalize(adj);
  p.row = graph::RowNormalize(adj);
  p.cheb = graph::ChebyOperator(adj);
  p.sum = adj;
  return p;
}

ag::Var GnnModel::Bind(ag::Tape& tape, Param& p) {
  ag::Var v = tape.Input(p.value);
  bound_.push_back({&p, v});
  return v;
}

void GnnModel::BeginForward() { bound_.clear(); }

void GnnModel::CollectGrads(ag::Tape& tape) {
  for (auto& [param, var] : bound_) {
    param->grad = tape.grad(var);
  }
}

std::vector<Param*> GnnModel::Params() {
  std::vector<Param*> out;
  for (auto& [name, p] : NamedParams()) out.push_back(p);
  return out;
}

std::vector<std::pair<std::string, Matrix>> GnnModel::StateDict() {
  std::vector<std::pair<std::string, Matrix>> out;
  for (auto& [name, p] : NamedParams()) out.emplace_back(name, p->value);
  return out;
}

Status GnnModel::LoadStateDict(
    const std::vector<std::pair<std::string, Matrix>>& state) {
  auto params = NamedParams();
  std::unordered_map<std::string, Param*> by_name;
  for (auto& [pname, p] : params) by_name.emplace(pname, p);
  if (state.size() != params.size()) {
    return BGC_ERR("state dict for " + name() + " has " +
                   std::to_string(state.size()) + " entries, model has " +
                   std::to_string(params.size()));
  }
  // Validate everything before writing anything, so a mismatched dict
  // cannot leave the model half-loaded.
  for (const auto& [sname, value] : state) {
    auto it = by_name.find(sname);
    if (it == by_name.end()) {
      return BGC_ERR("state dict entry \"" + sname + "\" does not name a " +
                     name() + " parameter");
    }
    if (it->second == nullptr) {
      return BGC_ERR("duplicate state dict entry \"" + sname + "\"");
    }
    const Matrix& have = it->second->value;
    if (value.rows() != have.rows() || value.cols() != have.cols()) {
      return BGC_ERR("shape mismatch for \"" + sname + "\": file " +
                     std::to_string(value.rows()) + "x" +
                     std::to_string(value.cols()) + ", model " +
                     std::to_string(have.rows()) + "x" +
                     std::to_string(have.cols()));
    }
    it->second = nullptr;  // mark consumed
  }
  by_name.clear();
  for (auto& [pname, p] : params) by_name.emplace(pname, p);
  for (const auto& [sname, value] : state) {
    by_name.at(sname)->value = value;
  }
  return Status::Ok();
}

namespace {

/// Kipf & Welling GCN: H_{l+1} = relu(Â (H_l W_l) + b_l); final layer
/// linear. Dropout applied to each layer's input during training.
class Gcn : public GnnModel {
 public:
  explicit Gcn(const GnnConfig& c) : GnnModel(c) {}

  void Init(Rng& rng) override {
    weights_.clear();
    biases_.clear();
    int in = config_.in_dim;
    for (int l = 0; l < config_.num_layers; ++l) {
      const int out =
          l + 1 == config_.num_layers ? config_.out_dim : config_.hidden_dim;
      weights_.emplace_back(Matrix::GlorotUniform(in, out, rng));
      biases_.emplace_back(Matrix(1, out));
      in = out;
    }
  }

  ag::Var Forward(ag::Tape& t, const Propagators& props, ag::Var x, Rng& rng,
                  bool training) override {
    BeginForward();
    ag::Var h = x;
    for (size_t l = 0; l < weights_.size(); ++l) {
      h = t.Dropout(h, config_.dropout, rng, training);
      h = t.SpMM(&props.gcn, t.MatMul(h, Bind(t, weights_[l])));
      h = t.AddRowVec(h, Bind(t, biases_[l]));
      if (l + 1 < weights_.size()) h = t.Relu(h);
    }
    return h;
  }

  std::vector<std::pair<std::string, Param*>> NamedParams() override {
    std::vector<std::pair<std::string, Param*>> out;
    for (size_t l = 0; l < weights_.size(); ++l) {
      const std::string prefix = "layers." + std::to_string(l);
      out.emplace_back(prefix + ".weight", &weights_[l]);
      out.emplace_back(prefix + ".bias", &biases_[l]);
    }
    return out;
  }

  std::string name() const override { return "gcn"; }

 private:
  std::vector<Param> weights_;
  std::vector<Param> biases_;
};

/// SGC (Wu et al.): logits = Â^K X W. The propagation runs through the
/// tape so gradients reach learnable features (condensed graphs).
class Sgc : public GnnModel {
 public:
  explicit Sgc(const GnnConfig& c) : GnnModel(c) {}

  void Init(Rng& rng) override {
    weight_ = Param(Matrix::GlorotUniform(config_.in_dim, config_.out_dim,
                                          rng));
    bias_ = Param(Matrix(1, config_.out_dim));
  }

  ag::Var Forward(ag::Tape& t, const Propagators& props, ag::Var x, Rng& rng,
                  bool training) override {
    BeginForward();
    ag::Var h = x;
    for (int k = 0; k < config_.sgc_k; ++k) h = t.SpMM(&props.gcn, h);
    h = t.Dropout(h, config_.dropout, rng, training);
    return t.AddRowVec(t.MatMul(h, Bind(t, weight_)), Bind(t, bias_));
  }

  std::vector<std::pair<std::string, Param*>> NamedParams() override {
    return {{"weight", &weight_}, {"bias", &bias_}};
  }

  std::string name() const override { return "sgc"; }

 private:
  Param weight_;
  Param bias_;
};

/// GraphSAGE with mean aggregation:
/// H_{l+1} = relu(H_l W_self + (D^{-1}A H_l) W_neigh + b).
class Sage : public GnnModel {
 public:
  explicit Sage(const GnnConfig& c) : GnnModel(c) {}

  void Init(Rng& rng) override {
    self_.clear();
    neigh_.clear();
    biases_.clear();
    int in = config_.in_dim;
    for (int l = 0; l < config_.num_layers; ++l) {
      const int out =
          l + 1 == config_.num_layers ? config_.out_dim : config_.hidden_dim;
      self_.emplace_back(Matrix::GlorotUniform(in, out, rng));
      neigh_.emplace_back(Matrix::GlorotUniform(in, out, rng));
      biases_.emplace_back(Matrix(1, out));
      in = out;
    }
  }

  ag::Var Forward(ag::Tape& t, const Propagators& props, ag::Var x, Rng& rng,
                  bool training) override {
    BeginForward();
    ag::Var h = x;
    for (size_t l = 0; l < self_.size(); ++l) {
      h = t.Dropout(h, config_.dropout, rng, training);
      ag::Var own = t.MatMul(h, Bind(t, self_[l]));
      ag::Var agg = t.MatMul(t.SpMM(&props.row, h), Bind(t, neigh_[l]));
      h = t.AddRowVec(t.Add(own, agg), Bind(t, biases_[l]));
      if (l + 1 < self_.size()) h = t.Relu(h);
    }
    return h;
  }

  std::vector<std::pair<std::string, Param*>> NamedParams() override {
    std::vector<std::pair<std::string, Param*>> out;
    for (size_t l = 0; l < self_.size(); ++l) {
      const std::string prefix = "layers." + std::to_string(l);
      out.emplace_back(prefix + ".self_weight", &self_[l]);
      out.emplace_back(prefix + ".neigh_weight", &neigh_[l]);
      out.emplace_back(prefix + ".bias", &biases_[l]);
    }
    return out;
  }

  std::string name() const override { return "sage"; }

 private:
  std::vector<Param> self_;
  std::vector<Param> neigh_;
  std::vector<Param> biases_;
};

/// Structure-blind MLP baseline (Table 4 "MLP").
class Mlp : public GnnModel {
 public:
  explicit Mlp(const GnnConfig& c) : GnnModel(c) {}

  void Init(Rng& rng) override {
    weights_.clear();
    biases_.clear();
    int in = config_.in_dim;
    for (int l = 0; l < config_.num_layers; ++l) {
      const int out =
          l + 1 == config_.num_layers ? config_.out_dim : config_.hidden_dim;
      weights_.emplace_back(Matrix::GlorotUniform(in, out, rng));
      biases_.emplace_back(Matrix(1, out));
      in = out;
    }
  }

  ag::Var Forward(ag::Tape& t, const Propagators& /*props*/, ag::Var x,
                  Rng& rng, bool training) override {
    BeginForward();
    ag::Var h = x;
    for (size_t l = 0; l < weights_.size(); ++l) {
      h = t.Dropout(h, config_.dropout, rng, training);
      h = t.AddRowVec(t.MatMul(h, Bind(t, weights_[l])),
                      Bind(t, biases_[l]));
      if (l + 1 < weights_.size()) h = t.Relu(h);
    }
    return h;
  }

  std::vector<std::pair<std::string, Param*>> NamedParams() override {
    std::vector<std::pair<std::string, Param*>> out;
    for (size_t l = 0; l < weights_.size(); ++l) {
      const std::string prefix = "layers." + std::to_string(l);
      out.emplace_back(prefix + ".weight", &weights_[l]);
      out.emplace_back(prefix + ".bias", &biases_[l]);
    }
    return out;
  }

  std::string name() const override { return "mlp"; }

 private:
  std::vector<Param> weights_;
  std::vector<Param> biases_;
};

/// APPNP (Gasteiger et al.): 2-layer MLP prediction followed by K steps of
/// personalized-PageRank propagation Z <- (1-α)ÂZ + αH.
class Appnp : public GnnModel {
 public:
  explicit Appnp(const GnnConfig& c) : GnnModel(c) {}

  void Init(Rng& rng) override {
    w1_ = Param(Matrix::GlorotUniform(config_.in_dim, config_.hidden_dim,
                                      rng));
    b1_ = Param(Matrix(1, config_.hidden_dim));
    w2_ = Param(Matrix::GlorotUniform(config_.hidden_dim, config_.out_dim,
                                      rng));
    b2_ = Param(Matrix(1, config_.out_dim));
  }

  ag::Var Forward(ag::Tape& t, const Propagators& props, ag::Var x, Rng& rng,
                  bool training) override {
    BeginForward();
    ag::Var h = t.Dropout(x, config_.dropout, rng, training);
    h = t.Relu(t.AddRowVec(t.MatMul(h, Bind(t, w1_)), Bind(t, b1_)));
    h = t.Dropout(h, config_.dropout, rng, training);
    h = t.AddRowVec(t.MatMul(h, Bind(t, w2_)), Bind(t, b2_));
    ag::Var z = h;
    const float alpha = config_.appnp_alpha;
    for (int k = 0; k < config_.appnp_k; ++k) {
      z = t.Add(t.Scale(t.SpMM(&props.gcn, z), 1.0f - alpha),
                t.Scale(h, alpha));
    }
    return z;
  }

  std::vector<std::pair<std::string, Param*>> NamedParams() override {
    return {{"mlp.0.weight", &w1_},
            {"mlp.0.bias", &b1_},
            {"mlp.1.weight", &w2_},
            {"mlp.1.bias", &b2_}};
  }

  std::string name() const override { return "appnp"; }

 private:
  Param w1_, b1_, w2_, b2_;
};

/// ChebyNet (Defferrard et al.) with the λ_max ≈ 2 rescaled Laplacian:
/// layer out = Σ_{k<K} T_k(L̃) H W_k with T_0 = H, T_1 = L̃H,
/// T_k = 2 L̃ T_{k-1} - T_{k-2}.
class Cheby : public GnnModel {
 public:
  explicit Cheby(const GnnConfig& c) : GnnModel(c) {}

  void Init(Rng& rng) override {
    weights_.clear();
    biases_.clear();
    int in = config_.in_dim;
    for (int l = 0; l < config_.num_layers; ++l) {
      const int out =
          l + 1 == config_.num_layers ? config_.out_dim : config_.hidden_dim;
      std::vector<Param> order;
      for (int k = 0; k < config_.cheb_k; ++k) {
        order.emplace_back(Matrix::GlorotUniform(in, out, rng));
      }
      weights_.push_back(std::move(order));
      biases_.emplace_back(Matrix(1, out));
      in = out;
    }
  }

  ag::Var Forward(ag::Tape& t, const Propagators& props, ag::Var x, Rng& rng,
                  bool training) override {
    BeginForward();
    ag::Var h = x;
    for (size_t l = 0; l < weights_.size(); ++l) {
      h = t.Dropout(h, config_.dropout, rng, training);
      ag::Var t_prev2 = h;                       // T_0 H
      ag::Var out = t.MatMul(t_prev2, Bind(t, weights_[l][0]));
      if (weights_[l].size() > 1) {
        ag::Var t_prev1 = t.SpMM(&props.cheb, h);  // T_1 H
        out = t.Add(out, t.MatMul(t_prev1, Bind(t, weights_[l][1])));
        for (size_t k = 2; k < weights_[l].size(); ++k) {
          ag::Var t_k = t.Sub(t.Scale(t.SpMM(&props.cheb, t_prev1), 2.0f),
                              t_prev2);
          out = t.Add(out, t.MatMul(t_k, Bind(t, weights_[l][k])));
          t_prev2 = t_prev1;
          t_prev1 = t_k;
        }
      }
      h = t.AddRowVec(out, Bind(t, biases_[l]));
      if (l + 1 < weights_.size()) h = t.Relu(h);
    }
    return h;
  }

  std::vector<std::pair<std::string, Param*>> NamedParams() override {
    std::vector<std::pair<std::string, Param*>> out;
    for (size_t l = 0; l < weights_.size(); ++l) {
      const std::string prefix = "layers." + std::to_string(l);
      for (size_t k = 0; k < weights_[l].size(); ++k) {
        out.emplace_back(prefix + ".cheb." + std::to_string(k),
                         &weights_[l][k]);
      }
      out.emplace_back(prefix + ".bias", &biases_[l]);
    }
    return out;
  }

  std::string name() const override { return "cheby"; }

 private:
  std::vector<std::vector<Param>> weights_;
  std::vector<Param> biases_;
};

/// GIN (Xu et al., ICLR'19) with sum aggregation:
/// H_{l+1} = MLP_l((1+ε_l)H_l + A H_l); ε learnable per layer. The final
/// layer's MLP maps to the class logits.
class Gin : public GnnModel {
 public:
  explicit Gin(const GnnConfig& c) : GnnModel(c) {}

  void Init(Rng& rng) override {
    w1_.clear();
    b1_.clear();
    w2_.clear();
    b2_.clear();
    eps_.clear();
    int in = config_.in_dim;
    for (int l = 0; l < config_.num_layers; ++l) {
      const int out =
          l + 1 == config_.num_layers ? config_.out_dim : config_.hidden_dim;
      w1_.emplace_back(Matrix::GlorotUniform(in, config_.hidden_dim, rng));
      b1_.emplace_back(Matrix(1, config_.hidden_dim));
      w2_.emplace_back(Matrix::GlorotUniform(config_.hidden_dim, out, rng));
      b2_.emplace_back(Matrix(1, out));
      eps_.emplace_back(Matrix(1, 1));
      in = out;
    }
  }

  ag::Var Forward(ag::Tape& t, const Propagators& props, ag::Var x, Rng& rng,
                  bool training) override {
    BeginForward();
    ag::Var h = x;
    for (size_t l = 0; l < w1_.size(); ++l) {
      h = t.Dropout(h, config_.dropout, rng, training);
      ag::Var agg = t.SpMM(&props.sum, h);
      // (1+ε)h: broadcast the learnable scalar to an n×1 column and scale
      // every row of h by it.
      ag::Var one_plus = t.AddConst(Bind(t, eps_[l]), 1.0f);  // 1×1
      ag::Var scale_col = t.MatMul(
          t.Constant(Matrix(t.value(h).rows(), 1, 1.0f)), one_plus);  // n×1
      ag::Var combined = t.Add(t.MulColVec(h, scale_col), agg);
      ag::Var hid = t.Relu(
          t.AddRowVec(t.MatMul(combined, Bind(t, w1_[l])), Bind(t, b1_[l])));
      h = t.AddRowVec(t.MatMul(hid, Bind(t, w2_[l])), Bind(t, b2_[l]));
      if (l + 1 < w1_.size()) h = t.Relu(h);
    }
    return h;
  }

  std::vector<std::pair<std::string, Param*>> NamedParams() override {
    std::vector<std::pair<std::string, Param*>> out;
    for (size_t l = 0; l < w1_.size(); ++l) {
      const std::string prefix = "layers." + std::to_string(l);
      out.emplace_back(prefix + ".mlp1.weight", &w1_[l]);
      out.emplace_back(prefix + ".mlp1.bias", &b1_[l]);
      out.emplace_back(prefix + ".mlp2.weight", &w2_[l]);
      out.emplace_back(prefix + ".mlp2.bias", &b2_[l]);
      out.emplace_back(prefix + ".eps", &eps_[l]);
    }
    return out;
  }

  std::string name() const override { return "gin"; }

 private:
  std::vector<Param> w1_, b1_, w2_, b2_, eps_;
};

}  // namespace

std::unique_ptr<GnnModel> MakeModel(const std::string& arch,
                                    const GnnConfig& config, Rng& rng) {
  BGC_CHECK_GT(config.in_dim, 0);
  BGC_CHECK_GT(config.out_dim, 0);
  std::unique_ptr<GnnModel> model;
  if (arch == "gcn") {
    model = std::make_unique<Gcn>(config);
  } else if (arch == "sage") {
    model = std::make_unique<Sage>(config);
  } else if (arch == "sgc") {
    model = std::make_unique<Sgc>(config);
  } else if (arch == "mlp") {
    model = std::make_unique<Mlp>(config);
  } else if (arch == "appnp") {
    model = std::make_unique<Appnp>(config);
  } else if (arch == "cheby") {
    model = std::make_unique<Cheby>(config);
  } else if (arch == "gin") {
    model = std::make_unique<Gin>(config);
  } else {
    BGC_CHECK_MSG(false, "unknown architecture: " + arch);
  }
  model->Init(rng);
  return model;
}

std::vector<std::string> SupportedArchitectures() {
  return {"gcn", "sage", "sgc", "mlp", "appnp", "cheby", "gin"};
}

}  // namespace bgc::nn
