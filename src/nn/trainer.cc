#include "src/nn/trainer.h"

#include "src/core/check.h"
#include "src/nn/optimizer.h"
#include "src/obs/obs.h"
#include "src/tensor/matrix_ops.h"

namespace bgc::nn {

float TrainNodeClassifier(GnnModel& model, const graph::CsrMatrix& adj,
                          const Matrix& x, const std::vector<int>& labels,
                          const std::vector<int>& train_idx,
                          const TrainConfig& config) {
  BGC_TRACE_SCOPE("nn.train");
  BGC_COUNTER_ADD("nn.train.epochs", config.epochs);
  BGC_CHECK_EQ(adj.rows(), x.rows());
  std::vector<int> idx = train_idx;
  if (idx.empty()) {
    idx.resize(x.rows());
    for (int i = 0; i < x.rows(); ++i) idx[i] = i;
  }
  std::vector<int> y;
  y.reserve(idx.size());
  for (int i : idx) {
    BGC_CHECK_GE(i, 0);
    BGC_CHECK_LT(i, static_cast<int>(labels.size()));
    y.push_back(labels[i]);
  }
  const Matrix targets = OneHot(y, model.config().out_dim);

  Propagators props = MakePropagators(adj);
  Adam opt(config.lr, config.weight_decay);
  Rng rng(config.seed ^ 0x7a1e5ULL);
  float last_loss = 0.0f;
  // One tape for the whole run: Reset() keeps node capacity and returns
  // the step's matrices to the buffer arena, so later epochs replay the
  // identical graph shape without reallocating.
  ag::Tape tape;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    tape.Reset();
    ag::Var xin = tape.Constant(x);
    ag::Var logits = model.Forward(tape, props, xin, rng, /*training=*/true);
    ag::Var loss =
        tape.SoftmaxCrossEntropy(tape.GatherRows(logits, idx), targets);
    last_loss = tape.value(loss).At(0, 0);
    tape.Backward(loss);
    model.CollectGrads(tape);
    opt.Step(model.Params());
  }
  return last_loss;
}

Matrix PredictLogits(GnnModel& model, const graph::CsrMatrix& adj,
                     const Matrix& x) {
  Propagators props = MakePropagators(adj);
  ag::Tape tape;
  Rng rng(0);
  ag::Var xin = tape.Constant(x);
  ag::Var logits = model.Forward(tape, props, xin, rng, /*training=*/false);
  return tape.value(logits);
}

double Accuracy(const Matrix& logits, const std::vector<int>& labels,
                const std::vector<int>& idx) {
  std::vector<int> pred = ArgmaxRows(logits);
  long long correct = 0, total = 0;
  if (idx.empty()) {
    for (size_t i = 0; i < pred.size(); ++i) {
      ++total;
      correct += pred[i] == labels[i];
    }
  } else {
    for (int i : idx) {
      BGC_CHECK_GE(i, 0);
      BGC_CHECK_LT(i, static_cast<int>(pred.size()));
      ++total;
      correct += pred[i] == labels[i];
    }
  }
  return total == 0 ? 0.0
                    : static_cast<double>(correct) / static_cast<double>(total);
}

}  // namespace bgc::nn
