#include "src/nn/trainer.h"

#include <algorithm>
#include <cstring>

#include "src/core/check.h"
#include "src/nn/optimizer.h"
#include "src/obs/obs.h"
#include "src/tensor/matrix_ops.h"

namespace bgc::nn {

float TrainNodeClassifier(GnnModel& model, const graph::CsrMatrix& adj,
                          const Matrix& x, const std::vector<int>& labels,
                          const std::vector<int>& train_idx,
                          const TrainConfig& config) {
  BGC_TRACE_SCOPE("nn.train");
  BGC_COUNTER_ADD("nn.train.epochs", config.epochs);
  BGC_CHECK_EQ(adj.rows(), x.rows());
  std::vector<int> idx = train_idx;
  if (idx.empty()) {
    idx.resize(x.rows());
    for (int i = 0; i < x.rows(); ++i) idx[i] = i;
  }
  std::vector<int> y;
  y.reserve(idx.size());
  for (int i : idx) {
    BGC_CHECK_GE(i, 0);
    BGC_CHECK_LT(i, static_cast<int>(labels.size()));
    y.push_back(labels[i]);
  }
  const Matrix targets = OneHot(y, model.config().out_dim);

  Propagators props = MakePropagators(adj);
  Adam opt(config.lr, config.weight_decay);
  Rng rng(config.seed ^ 0x7a1e5ULL);
  float last_loss = 0.0f;
  // One tape for the whole run: Reset() keeps node capacity and returns
  // the step's matrices to the buffer arena, so later epochs replay the
  // identical graph shape without reallocating.
  ag::Tape tape;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    tape.Reset();
    ag::Var xin = tape.Constant(x);
    ag::Var logits = model.Forward(tape, props, xin, rng, /*training=*/true);
    ag::Var loss =
        tape.SoftmaxCrossEntropy(tape.GatherRows(logits, idx), targets);
    last_loss = tape.value(loss).At(0, 0);
    tape.Backward(loss);
    model.CollectGrads(tape);
    opt.Step(model.Params());
  }
  return last_loss;
}

Matrix PredictLogits(GnnModel& model, const graph::CsrMatrix& adj,
                     const Matrix& x) {
  Propagators props = MakePropagators(adj);
  ag::Tape tape;
  Rng rng(0);
  ag::Var xin = tape.Constant(x);
  ag::Var logits = model.Forward(tape, props, xin, rng, /*training=*/false);
  return tape.value(logits);
}

MinibatchTrainer::MinibatchTrainer(GnnModel& model,
                                   const graph::NeighborSource& graph,
                                   const graph::FeatureSource& features,
                                   const std::vector<int>& labels,
                                   const std::vector<int>& train_idx,
                                   const MinibatchTrainConfig& config)
    : model_(&model),
      features_(&features),
      labels_(&labels),
      config_(config),
      sampler_(graph, SamplerConfig{config.fanout, config.batch_size,
                                    config.seed},
               train_idx),
      optimizer_(config.lr, config.weight_decay),
      // Same dropout-stream derivation as TrainNodeClassifier so the two
      // paths stay decoupled from sampling (which mixes its own purposes).
      dropout_rng_(config.seed ^ 0x7a1e5ULL) {
  BGC_CHECK_MSG(!train_idx.empty(),
                "MinibatchTrainer: train_idx must be non-empty");
  BGC_CHECK_EQ(graph.num_nodes(), features.num_nodes());
  BGC_CHECK_EQ(graph.num_nodes(), static_cast<int>(labels.size()));
}

float MinibatchTrainer::RunEpoch(int epoch) {
  BGC_TRACE_SCOPE("nn.train_minibatch.epoch");
  const int batches = sampler_.num_batches();
  double loss_sum = 0.0;
  for (int b = 0; b < batches; ++b) {
    MiniBatch mb = sampler_.Batch(epoch, b);
    // Per-batch propagators live on the stack: tape SpMM nodes hold
    // pointers into them, so they must outlive Backward() — and do,
    // because the tape is reset before the next batch reuses the slot.
    Propagators props = MakePropagators(mb.adj);
    Matrix x = features_->Gather(mb.nodes);
    std::vector<int> seed_rows(mb.num_seeds);
    std::vector<int> y(mb.num_seeds);
    for (int i = 0; i < mb.num_seeds; ++i) {
      seed_rows[i] = i;  // seeds occupy local rows [0, num_seeds)
      const int label = (*labels_)[mb.nodes[i]];
      BGC_CHECK_GE(label, 0);
      BGC_CHECK_LT(label, model_->config().out_dim);
      y[i] = label;
    }
    const Matrix targets = OneHot(y, model_->config().out_dim);

    tape_.Reset();
    ag::Var xin = tape_.Constant(x);
    ag::Var logits =
        model_->Forward(tape_, props, xin, dropout_rng_, /*training=*/true);
    ag::Var loss = tape_.SoftmaxCrossEntropy(
        tape_.GatherRows(logits, seed_rows), targets);
    loss_sum += tape_.value(loss).At(0, 0);
    tape_.Backward(loss);
    model_->CollectGrads(tape_);
    optimizer_.Step(model_->Params());
    BGC_COUNTER_ADD("nn.train_minibatch.steps", 1);
  }
  return static_cast<float>(loss_sum / batches);
}

float TrainNodeClassifierMinibatch(GnnModel& model,
                                   const graph::NeighborSource& graph,
                                   const graph::FeatureSource& features,
                                   const std::vector<int>& labels,
                                   const std::vector<int>& train_idx,
                                   const MinibatchTrainConfig& config) {
  BGC_TRACE_SCOPE("nn.train_minibatch");
  MinibatchTrainer trainer(model, graph, features, labels, train_idx, config);
  float loss = 0.0f;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    loss = trainer.RunEpoch(epoch);
  }
  return loss;
}

Matrix PredictLogitsSampled(GnnModel& model,
                            const graph::NeighborSource& graph,
                            const graph::FeatureSource& features,
                            const std::vector<int>& idx,
                            const std::vector<int>& fanout, int batch_size,
                            uint64_t seed) {
  BGC_TRACE_SCOPE("nn.predict_sampled");
  // Distinct from the training purposes mixed inside NeighborSampler.
  constexpr uint64_t kInferencePurpose = 0x8e44f0a9275b6c13ULL;
  NeighborSampler sampler(graph, SamplerConfig{fanout, batch_size, seed},
                          /*seeds=*/{});
  Matrix out(static_cast<int>(idx.size()), model.config().out_dim);
  Rng rng(0);
  ag::Tape tape;
  int done = 0, batch = 0;
  while (done < static_cast<int>(idx.size())) {
    const int take =
        std::min<int>(batch_size, static_cast<int>(idx.size()) - done);
    std::vector<int> seeds(idx.begin() + done, idx.begin() + done + take);
    MiniBatch mb = sampler.SampleForSeeds(seeds, kInferencePurpose, batch);
    Propagators props = MakePropagators(mb.adj);
    Matrix x = features.Gather(mb.nodes);
    tape.Reset();
    ag::Var xin = tape.Constant(x);
    ag::Var logits = model.Forward(tape, props, xin, rng, /*training=*/false);
    const Matrix& values = tape.value(logits);
    for (int i = 0; i < take; ++i) {
      std::memcpy(out.RowPtr(done + i), values.RowPtr(i),
                  sizeof(float) * model.config().out_dim);
    }
    done += take;
    ++batch;
  }
  return out;
}

double Accuracy(const Matrix& logits, const std::vector<int>& labels,
                const std::vector<int>& idx) {
  std::vector<int> pred = ArgmaxRows(logits);
  long long correct = 0, total = 0;
  if (idx.empty()) {
    for (size_t i = 0; i < pred.size(); ++i) {
      ++total;
      correct += pred[i] == labels[i];
    }
  } else {
    for (int i : idx) {
      BGC_CHECK_GE(i, 0);
      BGC_CHECK_LT(i, static_cast<int>(pred.size()));
      ++total;
      correct += pred[i] == labels[i];
    }
  }
  return total == 0 ? 0.0
                    : static_cast<double>(correct) / static_cast<double>(total);
}

}  // namespace bgc::nn
