#ifndef BGC_CONDENSE_COMMON_H_
#define BGC_CONDENSE_COMMON_H_

#include <vector>

#include "src/autograd/tape.h"
#include "src/condense/condenser.h"
#include "src/core/rng.h"
#include "src/graph/csr.h"
#include "src/tensor/matrix.h"

namespace bgc::condense {

/// Synthetic labels Y': per-class counts proportional to the class
/// distribution over `source.labeled`, each class with at least one labeled
/// node getting at least one synthetic node, total exactly `num_condensed`.
/// Returned sorted by class (class-contiguous blocks).
std::vector<int> AllocateSyntheticLabels(const SourceGraph& source,
                                         int num_classes, int num_condensed);

/// X' initialization: for each synthetic node, the features of a random
/// labeled source node of the same class plus small Gaussian noise — the
/// initialization GCond uses.
Matrix InitSyntheticFeatures(const SourceGraph& source,
                             const std::vector<int>& synthetic_labels,
                             Rng& rng);

/// Â^k X with the GCN-normalized operator of `adj` (no tape; real side of
/// the matching is constant within an epoch).
Matrix PropagateFeatures(const graph::CsrMatrix& adj, const Matrix& x, int k);

/// Closed-form per-class SGC gradients on the real graph.
///
/// For logits Z W with cross-entropy, dL/dW over the class-c labeled rows is
/// Z_cᵀ (softmax(Z_c W) - Y_c) / n_c. Returns one d×C matrix per class
/// (empty Matrix for classes with no labeled nodes). `z` is the already
/// propagated feature matrix.
std::vector<Matrix> PerClassGradients(const Matrix& z,
                                      const std::vector<int>& labels,
                                      const std::vector<int>& labeled,
                                      const Matrix& w, int num_classes);

/// Gradient-matching distance between a tape-tracked gradient and a constant
/// target: sum over columns j of (1 - cos(g[:,j], target[:,j])), the
/// column-wise cosine distance of DC/GCond. Returns a 1×1 Var.
ag::Var MatchingDistance(ag::Tape& tape, ag::Var g, const Matrix& target);

/// One closed-form SGC training step on the synthetic graph:
/// W -= lr * (Z'ᵀ(softmax(Z'W) - Y') / N' + wd * W). `z` is the propagated
/// synthetic features (constant), `y` one-hot labels.
void SgcStep(const Matrix& z, const Matrix& y, Matrix& w, float lr,
             float weight_decay = 5e-4f);

}  // namespace bgc::condense

#endif  // BGC_CONDENSE_COMMON_H_
