#include "src/condense/doscond.h"

#include <cmath>

#include "src/autograd/tape.h"
#include "src/condense/common.h"
#include "src/core/check.h"
#include "src/tensor/matrix_ops.h"

namespace bgc::condense {
namespace {

/// Class-contiguous row ranges of sorted synthetic labels.
std::vector<std::pair<int, int>> ClassRanges(const std::vector<int>& labels,
                                             int num_classes) {
  std::vector<std::pair<int, int>> ranges(num_classes, {0, 0});
  for (int c = 0, pos = 0; c < num_classes; ++c) {
    int count = 0;
    while (pos + count < static_cast<int>(labels.size()) &&
           labels[pos + count] == c) {
      ++count;
    }
    ranges[c] = {pos, pos + count};
    pos += count;
  }
  return ranges;
}

}  // namespace

void DosCondCondenser::Initialize(const SourceGraph& source, int num_classes,
                                  const CondenseConfig& config, Rng& rng) {
  config_ = config;
  num_classes_ = num_classes;
  rng_ = rng.Fork();
  syn_labels_ =
      AllocateSyntheticLabels(source, num_classes, config.num_condensed);
  class_ranges_ = ClassRanges(syn_labels_, num_classes);
  x_syn_ = nn::Param(InitSyntheticFeatures(source, syn_labels_, rng_));
  const int n = x_syn_.value.rows();
  // Logits start at the sparse prior so the one-step updates add structure
  // only where the matching gradient asks for it.
  adj_logits_ = nn::Param(Matrix(n, n, config.adj_bias_init));
  feature_opt_ = std::make_unique<nn::Adam>(config.feature_lr);
  adj_opt_ = std::make_unique<nn::Adam>(config.adj_lr);
}

void DosCondCondenser::Epoch(const SourceGraph& source) {
  BGC_CHECK_GT(num_classes_, 0);
  const int d = source.features.cols();
  const int n = x_syn_.value.rows();
  // One-step matching: fresh surrogate, single update, no inner training.
  Matrix w = Matrix::GlorotUniform(d, num_classes_, rng_);
  Matrix z_real = PropagateFeatures(source.adj, source.features,
                                    config_.sgc_k);
  std::vector<Matrix> real_grads = PerClassGradients(
      z_real, source.labels, source.labeled, w, num_classes_);

  ag::Tape t;
  ag::Var x = t.Input(x_syn_.value);
  ag::Var logits = t.Input(adj_logits_.value);
  ag::Var sym = t.Scale(t.Add(logits, t.Transpose(logits)), 0.5f);
  ag::Var prob = t.Sigmoid(sym);
  ag::Var a = t.Hadamard(prob, t.BinarizeSte(prob, 0.5f));
  Matrix mask(n, n, 1.0f);
  for (int i = 0; i < n; ++i) mask(i, i) = 0.0f;
  a = t.Hadamard(a, t.Constant(mask));
  ag::Var hat = t.Add(a, t.Constant(Matrix::Identity(n)));
  ag::Var deg = t.RowSumOp(hat);
  ag::Var inv_sqrt =
      t.ElemDiv(t.Constant(Matrix(n, 1, 1.0f)), t.Sqrt(deg, 1e-8f));
  ag::Var op = t.MulRowVec(t.MulColVec(hat, inv_sqrt), t.Transpose(inv_sqrt));
  ag::Var z_syn = x;
  for (int k = 0; k < config_.sgc_k; ++k) z_syn = t.MatMul(op, z_syn);

  ag::Var w_const = t.Constant(w);
  ag::Var loss{};
  bool has_loss = false;
  for (int c = 0; c < num_classes_; ++c) {
    if (real_grads[c].empty()) continue;
    auto [begin, end] = class_ranges_[c];
    if (begin == end) continue;
    std::vector<int> rows;
    for (int i = begin; i < end; ++i) rows.push_back(i);
    ag::Var zc = t.GatherRows(z_syn, rows);
    ag::Var probs = t.Softmax(t.MatMul(zc, w_const));
    Matrix onehot(end - begin, num_classes_);
    for (int i = 0; i < end - begin; ++i) onehot(i, c) = 1.0f;
    ag::Var diff = t.Sub(probs, t.Constant(onehot));
    ag::Var g = t.Scale(t.MatMul(t.Transpose(zc), diff),
                        1.0f / static_cast<float>(end - begin));
    ag::Var term = MatchingDistance(t, g, real_grads[c]);
    loss = has_loss ? t.Add(loss, term) : term;
    has_loss = true;
  }
  BGC_CHECK(has_loss);
  t.Backward(loss);
  x_syn_.grad = t.grad(x);
  feature_opt_->Step({&x_syn_});
  adj_logits_.grad = t.grad(logits);
  adj_opt_->Step({&adj_logits_});
}

CondensedGraph DosCondCondenser::Result() const {
  CondensedGraph out;
  out.features = x_syn_.value;
  out.labels = syn_labels_;
  out.num_classes = num_classes_;
  out.use_structure = true;
  const int n = x_syn_.value.rows();
  Matrix a(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      const float sym =
          0.5f * (adj_logits_.value(i, j) + adj_logits_.value(j, i));
      const float p = 1.0f / (1.0f + std::exp(-sym));
      a(i, j) = p > 0.5f ? p : 0.0f;
    }
  }
  out.adj = graph::CsrMatrix::FromDense(a);
  return out;
}

}  // namespace bgc::condense
