#ifndef BGC_CONDENSE_CONDENSER_H_
#define BGC_CONDENSE_CONDENSER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/core/rng.h"
#include "src/data/dataset.h"
#include "src/graph/csr.h"
#include "src/tensor/matrix.h"

namespace bgc::condense {

/// The graph a condenser consumes. The backdoor attack mutates this between
/// condensation epochs (trigger re-attachment), which is why it is a value
/// handed to every Epoch() call rather than captured at Initialize().
struct SourceGraph {
  graph::CsrMatrix adj;
  Matrix features;
  std::vector<int> labels;
  std::vector<int> labeled;  // node ids whose labels drive the matching
};

/// Builds a SourceGraph from a dataset's training view.
SourceGraph FromTrainView(const data::TrainView& view);

/// A condensed dataset S = {A', X', Y'}. When `use_structure` is false the
/// method is structure-free (GCond-X / DC-Graph / GC-SNTK) and `adj` is the
/// identity; victims should be trained with that identity adjacency.
struct CondensedGraph {
  graph::CsrMatrix adj;
  Matrix features;
  std::vector<int> labels;
  int num_classes = 0;
  bool use_structure = false;
};

/// Hyper-parameters shared by all condensation methods; method-specific
/// fields are ignored where not applicable.
struct CondenseConfig {
  int num_condensed = 30;   // N'
  int epochs = 120;         // outer condensation epochs
  // Gradient matching (GCond / GCond-X / DC-Graph).
  float feature_lr = 0.02f;
  float adj_lr = 0.02f;
  int inner_steps = 2;      // matching updates per outer epoch
  int model_steps = 4;      // surrogate W refresh steps per outer epoch
  float model_lr = 0.5f;    // tuned for propagated features (GCond/GCond-X)
  // DC-Graph matches raw-feature gradients whose magnitudes are ~10x the
  // propagated ones; it takes proportionally smaller steps.
  float dc_model_lr = 0.05f;
  float dc_feature_lr = 0.01f;
  int sgc_k = 2;            // SGC propagation depth of the surrogate
  int adj_rank = 16;        // rank of the learned-structure head (GCond)
  float adj_bias_init = -2.0f;  // sparse prior of the structure head
  // Kernel ridge regression (GC-SNTK).
  float ridge_lambda = 1e-2f;
  float sntk_lr = 0.01f;
  int sntk_batch = 2000;    // labeled-node subsample per epoch
  // Edge sparsification (src/reduce "sparsify-er" / "sparsify-rand"):
  // fraction of undirected non-self-loop edges kept. Ignored elsewhere.
  float sparsify_keep = 0.5f;
  uint64_t seed = 0;
};

/// Snapshot of a condenser mid-trajectory: everything needed to continue
/// epoch-for-epoch bit-identically with an uninterrupted run (synthetic
/// tensors, optimizer moments, surrogate weights, RNG stream). Kept as
/// plain data so the storage layer (src/store) can serialize it without
/// the condensers depending on any file format.
struct CondenserState {
  std::string method;  // producing condenser's name(); checked on restore
  long long epoch = 0;  // completed outer epochs
  int num_classes = 0;
  CondenseConfig config;
  std::vector<int> syn_labels;
  /// Named tensors: synthetic features/structure params, Adam moments,
  /// surrogate weights. Names are condenser-private.
  std::vector<std::pair<std::string, Matrix>> tensors;
  /// Named integer state (e.g. optimizer step counters).
  std::vector<std::pair<std::string, long long>> scalars;
  /// Rng::SaveState words of the condenser's internal stream.
  std::vector<uint64_t> rng_state;
};

/// A graph condensation method with an epoch-granular driver so callers
/// (notably the BGC attack) can interleave their own updates with the
/// condensation trajectory.
class Condenser {
 public:
  virtual ~Condenser() = default;

  /// Allocates synthetic labels/features from `source`. Must be called once
  /// before Epoch().
  virtual void Initialize(const SourceGraph& source, int num_classes,
                          const CondenseConfig& config, Rng& rng) = 0;

  /// One outer condensation update against the (possibly mutated) source.
  virtual void Epoch(const SourceGraph& source) = 0;

  /// Current condensed dataset (valid after Initialize; improves with
  /// epochs).
  virtual CondensedGraph Result() const = 0;

  virtual std::string name() const = 0;

  /// Checkpoint/resume support (used by src/store resumable condensation).
  /// Methods that return false abort in ExportState/RestoreState.
  virtual bool SupportsCheckpoint() const { return false; }

  /// Full trajectory snapshot after the last completed Epoch().
  virtual CondenserState ExportState() const;

  /// Replaces Initialize(): rebuilds the condenser at `state`'s epoch so
  /// subsequent Epoch() calls continue the checkpointed run bit-
  /// identically. `source` is the same source graph the checkpointed run
  /// saw (condensers that cache source-derived quantities rebuild them).
  virtual void RestoreState(const SourceGraph& source,
                            const CondenserState& state);
};

/// True when `method` names a condenser MakeCondenser can build. Lets
/// callers that must not abort (e.g. the grid scheduler's error rows)
/// validate names up front.
bool IsKnownMethod(const std::string& method);

/// Methods evaluated in the paper — "gcond", "gcond-x", "dc-graph",
/// "gc-sntk" — plus two extensions from its related work: "doscond"
/// (one-step gradient matching) and "gcdm" (distribution matching), and
/// the non-learned reduction backends of src/reduce: "coarsen"
/// (heavy-edge-matching coarsening), "sparsify-er" (effective-resistance
/// edge sparsification), and "sparsify-rand" (uniform-random control).
/// Aborts on unknown names.
std::unique_ptr<Condenser> MakeCondenser(const std::string& method);

/// Convenience driver: Initialize + config.epochs × Epoch + Result.
CondensedGraph RunCondensation(Condenser& condenser, const SourceGraph& source,
                               int num_classes, const CondenseConfig& config,
                               Rng& rng);

}  // namespace bgc::condense

#endif  // BGC_CONDENSE_CONDENSER_H_
