#include "src/condense/io.h"

#include <cstdio>
#include <fstream>

#include "src/core/check.h"

namespace bgc::condense {
namespace {

void WriteMatrix(std::ofstream& out, const Matrix& m) {
  char buf[64];
  for (int i = 0; i < m.rows(); ++i) {
    const float* row = m.RowPtr(i);
    for (int j = 0; j < m.cols(); ++j) {
      std::snprintf(buf, sizeof(buf), "%.9g", static_cast<double>(row[j]));
      out << buf << (j + 1 == m.cols() ? '\n' : ' ');
    }
  }
}

Matrix ReadMatrix(std::ifstream& in, int rows, int cols) {
  Matrix m(rows, cols);
  for (int i = 0; i < rows * cols; ++i) {
    double v = 0.0;
    BGC_CHECK_MSG(static_cast<bool>(in >> v), "truncated feature block");
    m.data()[i] = static_cast<float>(v);
  }
  return m;
}

}  // namespace

void SaveCondensed(const CondensedGraph& condensed, const std::string& path) {
  std::ofstream out(path);
  BGC_CHECK_MSG(out.good(), "cannot open for writing: " + path);
  out << "bgc-graph v1\n";
  out << "nodes " << condensed.features.rows() << " features "
      << condensed.features.cols() << " classes " << condensed.num_classes
      << " edges " << condensed.adj.nnz() << " inductive "
      << (condensed.use_structure ? 1 : 0) << '\n';
  for (size_t i = 0; i < condensed.labels.size(); ++i) {
    out << condensed.labels[i]
        << (i + 1 == condensed.labels.size() ? '\n' : ' ');
  }
  char buf[64];
  for (const auto& e : condensed.adj.ToEdges()) {
    std::snprintf(buf, sizeof(buf), "%d %d %.9g\n", e.src, e.dst,
                  static_cast<double>(e.weight));
    out << buf;
  }
  WriteMatrix(out, condensed.features);
  BGC_CHECK_MSG(out.good(), "write failed: " + path);
}

CondensedGraph LoadCondensed(const std::string& path) {
  std::ifstream in(path);
  BGC_CHECK_MSG(in.good(), "cannot open for reading: " + path);
  std::string magic, version;
  BGC_CHECK_MSG(static_cast<bool>(in >> magic >> version),
                "missing bgc-graph header");
  BGC_CHECK_MSG(magic == "bgc-graph" && version == "v1",
                "unsupported file format: " + magic + " " + version);
  int nodes = 0, features = 0, classes = 0, edges = 0, structure = 0;
  std::string k1, k2, k3, k4, k5;
  BGC_CHECK_MSG(static_cast<bool>(in >> k1 >> nodes >> k2 >> features >> k3 >>
                                  classes >> k4 >> edges >> k5 >> structure),
                "malformed header line");
  BGC_CHECK_MSG(k1 == "nodes" && k2 == "features" && k3 == "classes" &&
                    k4 == "edges" && k5 == "inductive",
                "malformed header keys");
  CondensedGraph g;
  g.num_classes = classes;
  g.use_structure = structure != 0;
  g.labels.resize(nodes);
  for (int i = 0; i < nodes; ++i) {
    BGC_CHECK_MSG(static_cast<bool>(in >> g.labels[i]), "truncated labels");
    BGC_CHECK_GE(g.labels[i], 0);
    BGC_CHECK_LT(g.labels[i], classes);
  }
  std::vector<graph::Edge> edge_list;
  edge_list.reserve(edges);
  for (int k = 0; k < edges; ++k) {
    int src = 0, dst = 0;
    double w = 0.0;
    BGC_CHECK_MSG(static_cast<bool>(in >> src >> dst >> w),
                  "truncated edge block");
    edge_list.push_back({src, dst, static_cast<float>(w)});
  }
  g.adj = graph::CsrMatrix::FromEdges(nodes, nodes, edge_list,
                                      /*symmetrize=*/false);
  g.features = ReadMatrix(in, nodes, features);
  return g;
}

}  // namespace bgc::condense
