#include "src/condense/io.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/core/check.h"
#include "src/core/fs.h"

namespace bgc::condense {
namespace {

void WriteMatrix(std::ostream& out, const Matrix& m) {
  char buf[64];
  for (int i = 0; i < m.rows(); ++i) {
    const float* row = m.RowPtr(i);
    for (int j = 0; j < m.cols(); ++j) {
      std::snprintf(buf, sizeof(buf), "%.9g", static_cast<double>(row[j]));
      out << buf << (j + 1 == m.cols() ? '\n' : ' ');
    }
  }
}

Status ReadMatrixInto(std::istream& in, int rows, int cols, Matrix* out) {
  *out = Matrix(rows, cols);
  for (int i = 0; i < rows * cols; ++i) {
    double v = 0.0;
    if (!(in >> v)) {
      return BGC_ERR("truncated or non-numeric feature block (entry " +
                     std::to_string(i) + " of " +
                     std::to_string(rows * cols) + ")");
    }
    out->data()[i] = static_cast<float>(v);
  }
  return Status::Ok();
}

}  // namespace

void SaveCondensed(const CondensedGraph& condensed, const std::string& path) {
  std::ostringstream out;
  out << "bgc-graph v1\n";
  out << "nodes " << condensed.features.rows() << " features "
      << condensed.features.cols() << " classes " << condensed.num_classes
      << " edges " << condensed.adj.nnz() << " inductive "
      << (condensed.use_structure ? 1 : 0) << '\n';
  for (size_t i = 0; i < condensed.labels.size(); ++i) {
    out << condensed.labels[i]
        << (i + 1 == condensed.labels.size() ? '\n' : ' ');
  }
  char buf[64];
  for (const auto& e : condensed.adj.ToEdges()) {
    std::snprintf(buf, sizeof(buf), "%d %d %.9g\n", e.src, e.dst,
                  static_cast<double>(e.weight));
    out << buf;
  }
  WriteMatrix(out, condensed.features);
  Status s = WriteFileAtomic(path, out.str());
  BGC_CHECK_MSG(s.ok(), "cannot write " + path + ": " + s.message());
}

StatusOr<CondensedGraph> TryLoadCondensed(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) return BGC_ERR("cannot open for reading: " + path);
  std::string magic, version;
  if (!(in >> magic >> version)) {
    return BGC_ERR(path + ": missing bgc-graph header");
  }
  if (magic != "bgc-graph" || version != "v1") {
    return BGC_ERR(path + ": unsupported file format: " + magic + " " +
                   version);
  }
  int nodes = 0, features = 0, classes = 0, edges = 0, structure = 0;
  std::string k1, k2, k3, k4, k5;
  if (!(in >> k1 >> nodes >> k2 >> features >> k3 >> classes >> k4 >>
        edges >> k5 >> structure)) {
    return BGC_ERR(path + ": malformed header line");
  }
  if (k1 != "nodes" || k2 != "features" || k3 != "classes" || k4 != "edges" ||
      k5 != "inductive") {
    return BGC_ERR(path + ": malformed header keys");
  }
  if (nodes < 0 || features < 0 || classes < 0 || edges < 0) {
    return BGC_ERR(path + ": negative header count");
  }
  CondensedGraph g;
  g.num_classes = classes;
  g.use_structure = structure != 0;
  g.labels.resize(nodes);
  for (int i = 0; i < nodes; ++i) {
    if (!(in >> g.labels[i])) return BGC_ERR(path + ": truncated labels");
    if (g.labels[i] < 0 || g.labels[i] >= classes) {
      return BGC_ERR(path + ": label " + std::to_string(g.labels[i]) +
                     " out of range [0, " + std::to_string(classes) + ")");
    }
  }
  std::vector<graph::Edge> edge_list;
  edge_list.reserve(edges);
  for (int k = 0; k < edges; ++k) {
    int src = 0, dst = 0;
    double w = 0.0;
    if (!(in >> src >> dst >> w)) {
      return BGC_ERR(path + ": truncated edge block (edge " +
                     std::to_string(k) + " of " + std::to_string(edges) +
                     ")");
    }
    if (src < 0 || src >= nodes || dst < 0 || dst >= nodes) {
      return BGC_ERR(path + ": edge endpoint out of range: (" +
                     std::to_string(src) + ", " + std::to_string(dst) +
                     ") with " + std::to_string(nodes) + " nodes");
    }
    edge_list.push_back({src, dst, static_cast<float>(w)});
  }
  g.adj = graph::CsrMatrix::FromEdges(nodes, nodes, edge_list,
                                      /*symmetrize=*/false);
  if (Status s = ReadMatrixInto(in, nodes, features, &g.features); !s.ok()) {
    return Status::Error(path + ": " + s.message());
  }
  return g;
}

CondensedGraph LoadCondensed(const std::string& path) {
  StatusOr<CondensedGraph> loaded = TryLoadCondensed(path);
  BGC_CHECK_MSG(loaded.ok(), loaded.status().message());
  return loaded.take();
}

}  // namespace bgc::condense
