#ifndef BGC_CONDENSE_GC_SNTK_H_
#define BGC_CONDENSE_GC_SNTK_H_

#include <memory>
#include <string>

#include "src/condense/condenser.h"
#include "src/nn/optimizer.h"
#include "src/nn/param.h"

namespace bgc::condense {

/// GC-SNTK (Wang et al., WWW'24): graph condensation as kernel ridge
/// regression under a structure-based neural tangent kernel.
///
/// The structure enters through propagation: real-side features are
/// aggregated with the GCN operator (H = Â^K X) before the kernel; the
/// synthetic set is structure-free (X', Y'). The kernel is the depth-1
/// ReLU NTK:
///   Σ0(u,v) = ⟨u,v⟩/d,  s = Σ0/√(Σ0(u,u)Σ0(v,v)),
///   κ0(s) = (π - arccos s)/π,
///   κ1(s) = (s(π - arccos s) + √(1-s²))/π,
///   Θ(u,v) = √(Σ0(u,u)Σ0(v,v))·κ1(s) + Σ0(u,v)·κ0(s).
/// Each epoch optimizes X' by one Adam step on the KRR objective
///   || Y_B − K_BS (K_SS + λI)^{-1} Y' ||²
/// over a subsample B of labeled nodes, with gradients flowing through the
/// kernel entries and the ridge solve.
class GcSntkCondenser : public Condenser {
 public:
  GcSntkCondenser() = default;

  void Initialize(const SourceGraph& source, int num_classes,
                  const CondenseConfig& config, Rng& rng) override;
  void Epoch(const SourceGraph& source) override;
  CondensedGraph Result() const override;
  std::string name() const override { return "gc-sntk"; }

 private:
  CondenseConfig config_;
  int num_classes_ = 0;
  std::vector<int> syn_labels_;
  Matrix y_syn_;  // one-hot Y'
  nn::Param x_syn_;
  std::unique_ptr<nn::Adam> opt_;
  Rng rng_{0};
};

}  // namespace bgc::condense

#endif  // BGC_CONDENSE_GC_SNTK_H_
