#include "src/condense/condenser.h"

#include "src/condense/doscond.h"
#include "src/condense/gc_sntk.h"
#include "src/condense/gcdm.h"
#include "src/condense/gradient_matching.h"
#include "src/core/check.h"
#include "src/obs/obs.h"
#include "src/reduce/reduce.h"

namespace bgc::condense {

CondenserState Condenser::ExportState() const {
  BGC_CHECK_MSG(false, name() + " does not support checkpointing");
  return {};
}

void Condenser::RestoreState(const SourceGraph& /*source*/,
                             const CondenserState& /*state*/) {
  BGC_CHECK_MSG(false, name() + " does not support checkpointing");
}

SourceGraph FromTrainView(const data::TrainView& view) {
  SourceGraph s;
  s.adj = view.adj;
  s.features = view.features;
  s.labels = view.labels;
  s.labeled = view.labeled;
  return s;
}

bool IsKnownMethod(const std::string& method) {
  return method == "gcond" || method == "gcond-x" || method == "dc-graph" ||
         method == "gc-sntk" || method == "doscond" || method == "gcdm" ||
         method == "coarsen" || method == "sparsify-er" ||
         method == "sparsify-rand";
}

std::unique_ptr<Condenser> MakeCondenser(const std::string& method) {
  using Variant = GradientMatchingCondenser::Variant;
  if (method == "gcond") {
    return std::make_unique<GradientMatchingCondenser>(Variant::kGcond);
  }
  if (method == "gcond-x") {
    return std::make_unique<GradientMatchingCondenser>(Variant::kGcondX);
  }
  if (method == "dc-graph") {
    return std::make_unique<GradientMatchingCondenser>(Variant::kDcGraph);
  }
  if (method == "gc-sntk") {
    return std::make_unique<GcSntkCondenser>();
  }
  if (method == "doscond") {
    return std::make_unique<DosCondCondenser>();
  }
  if (method == "gcdm") {
    return std::make_unique<GcdmCondenser>();
  }
  if (method == "coarsen") {
    return std::make_unique<reduce::CoarsenCondenser>();
  }
  if (method == "sparsify-er") {
    return std::make_unique<reduce::SparsifyCondenser>(
        reduce::SparsifyCondenser::Mode::kEffectiveResistance);
  }
  if (method == "sparsify-rand") {
    return std::make_unique<reduce::SparsifyCondenser>(
        reduce::SparsifyCondenser::Mode::kUniform);
  }
  BGC_CHECK_MSG(false, "unknown condensation method: " + method);
  return nullptr;
}

CondensedGraph RunCondensation(Condenser& condenser, const SourceGraph& source,
                               int num_classes, const CondenseConfig& config,
                               Rng& rng) {
  {
    BGC_TRACE_SCOPE("phase.condense.init");
    condenser.Initialize(source, num_classes, config, rng);
  }
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    BGC_TRACE_SCOPE("phase.condense.epoch");
    condenser.Epoch(source);
  }
  return condenser.Result();
}

}  // namespace bgc::condense
