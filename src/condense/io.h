#ifndef BGC_CONDENSE_IO_H_
#define BGC_CONDENSE_IO_H_

#include <string>

#include "src/condense/condenser.h"
#include "src/core/status.h"

namespace bgc::condense {

/// Serialization of condensed graphs in the same "bgc-graph v1" text
/// format as data::SaveDataset (see src/data/io.h), minus the split lines.
/// The header's last slot stores `use_structure`. This is the deliverable a
/// condensation service ships to its customers.

/// Saves a condensed graph. The write is atomic (temp file + fsync +
/// rename, see core/fs.h): a crash mid-save never leaves a half-written
/// deliverable. Aborts on I/O failure.
void SaveCondensed(const CondensedGraph& condensed, const std::string& path);

/// Recoverable loader: returns a descriptive error for unreadable files
/// and malformed content (truncated/corrupt headers, out-of-range edges or
/// labels, non-numeric floats) instead of aborting.
StatusOr<CondensedGraph> TryLoadCondensed(const std::string& path);

/// TryLoadCondensed that aborts on any error (legacy fail-fast entry
/// point).
CondensedGraph LoadCondensed(const std::string& path);

}  // namespace bgc::condense

#endif  // BGC_CONDENSE_IO_H_
