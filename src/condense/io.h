#ifndef BGC_CONDENSE_IO_H_
#define BGC_CONDENSE_IO_H_

#include <string>

#include "src/condense/condenser.h"

namespace bgc::condense {

/// Serialization of condensed graphs in the same "bgc-graph v1" text
/// format as data::SaveDataset (see src/data/io.h), minus the split lines.
/// The header's last slot stores `use_structure`. This is the deliverable a
/// condensation service ships to its customers.
void SaveCondensed(const CondensedGraph& condensed, const std::string& path);
CondensedGraph LoadCondensed(const std::string& path);

}  // namespace bgc::condense

#endif  // BGC_CONDENSE_IO_H_
