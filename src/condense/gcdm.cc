#include "src/condense/gcdm.h"

#include "src/autograd/tape.h"
#include "src/condense/common.h"
#include "src/core/check.h"
#include "src/tensor/matrix_ops.h"

namespace bgc::condense {

void GcdmCondenser::Initialize(const SourceGraph& source, int num_classes,
                               const CondenseConfig& config, Rng& rng) {
  config_ = config;
  num_classes_ = num_classes;
  rng_ = rng.Fork();
  syn_labels_ =
      AllocateSyntheticLabels(source, num_classes, config.num_condensed);
  class_ranges_.assign(num_classes, {0, 0});
  for (int c = 0, pos = 0; c < num_classes; ++c) {
    int count = 0;
    while (pos + count < static_cast<int>(syn_labels_.size()) &&
           syn_labels_[pos + count] == c) {
      ++count;
    }
    class_ranges_[c] = {pos, pos + count};
    pos += count;
  }
  x_syn_ = nn::Param(InitSyntheticFeatures(source, syn_labels_, rng_));
  opt_ = std::make_unique<nn::Adam>(config.feature_lr);
}

void GcdmCondenser::Epoch(const SourceGraph& source) {
  BGC_CHECK_GT(num_classes_, 0);
  const int d = source.features.cols();
  // Random embedding: one hidden ReLU layer with a fresh Glorot projection
  // per epoch — matching over a distribution of embeddings rather than one.
  const int proj_dim = 64;
  Matrix theta = Matrix::GlorotUniform(d, proj_dim, rng_);

  Matrix z_real = PropagateFeatures(source.adj, source.features,
                                    config_.sgc_k);
  // Real class means of φ(ZΘ) are constants for this epoch.
  Matrix phi_real = Relu(MatMul(z_real, theta));
  std::vector<std::vector<int>> by_class(num_classes_);
  for (int idx : source.labeled) by_class[source.labels[idx]].push_back(idx);

  ag::Tape t;
  ag::Var x = t.Input(x_syn_.value);
  // Structure-free synthetic side: Ẑ' = X'.
  ag::Var phi_syn = t.Relu(t.MatMul(x, t.Constant(theta)));

  ag::Var loss{};
  bool has_loss = false;
  for (int c = 0; c < num_classes_; ++c) {
    if (by_class[c].empty()) continue;
    auto [begin, end] = class_ranges_[c];
    if (begin == end) continue;
    Matrix real_mean(1, proj_dim);
    for (int idx : by_class[c]) {
      for (int j = 0; j < proj_dim; ++j) {
        real_mean.data()[j] += phi_real(idx, j);
      }
    }
    ScaleInPlace(real_mean, 1.0f / static_cast<float>(by_class[c].size()));

    std::vector<int> rows;
    for (int i = begin; i < end; ++i) rows.push_back(i);
    ag::Var syn_mean = t.Scale(t.ColSumOp(t.GatherRows(phi_syn, rows)),
                               1.0f / static_cast<float>(rows.size()));
    ag::Var diff = t.Sub(syn_mean, t.Constant(real_mean));
    ag::Var term = t.SumAll(t.Square(diff));
    loss = has_loss ? t.Add(loss, term) : term;
    has_loss = true;
  }
  BGC_CHECK(has_loss);
  t.Backward(loss);
  x_syn_.grad = t.grad(x);
  opt_->Step({&x_syn_});
}

CondensedGraph GcdmCondenser::Result() const {
  CondensedGraph out;
  out.adj = graph::CsrMatrix::Identity(x_syn_.value.rows());
  out.features = x_syn_.value;
  out.labels = syn_labels_;
  out.num_classes = num_classes_;
  out.use_structure = false;
  return out;
}

}  // namespace bgc::condense
