#include "src/condense/common.h"

#include <algorithm>
#include <cmath>

#include "src/core/check.h"
#include "src/data/dataset.h"
#include "src/tensor/matrix_ops.h"

namespace bgc::condense {

std::vector<int> AllocateSyntheticLabels(const SourceGraph& source,
                                         int num_classes, int num_condensed) {
  BGC_CHECK_GT(num_condensed, 0);
  std::vector<int> counts =
      data::ClassCounts(source.labels, num_classes, source.labeled);
  const int total_labeled = static_cast<int>(source.labeled.size());
  BGC_CHECK_GT(total_labeled, 0);

  // Proportional allocation with a floor of 1 for populated classes.
  std::vector<int> alloc(num_classes, 0);
  int assigned = 0;
  for (int c = 0; c < num_classes; ++c) {
    if (counts[c] == 0) continue;
    alloc[c] = std::max(
        1, static_cast<int>(static_cast<double>(counts[c]) * num_condensed /
                            total_labeled));
    assigned += alloc[c];
  }
  // Trim or pad (largest classes first) until the total is exact. When the
  // budget is smaller than the number of populated classes, the floor of 1
  // cannot hold — drop the smallest classes to 0.
  while (assigned > num_condensed) {
    int victim = -1;
    for (int c = 0; c < num_classes; ++c) {
      if (alloc[c] > 1 && (victim < 0 || alloc[c] > alloc[victim])) {
        victim = c;
      }
    }
    if (victim < 0) {
      for (int c = 0; c < num_classes; ++c) {
        if (alloc[c] > 0 &&
            (victim < 0 || counts[c] < counts[victim])) {
          victim = c;
        }
      }
    }
    BGC_CHECK_GE(victim, 0);
    --alloc[victim];
    --assigned;
  }
  while (assigned < num_condensed) {
    int biggest = 0;
    for (int c = 1; c < num_classes; ++c) {
      if (counts[c] > counts[biggest]) biggest = c;
    }
    ++alloc[biggest];
    ++assigned;
  }

  std::vector<int> labels;
  labels.reserve(num_condensed);
  for (int c = 0; c < num_classes; ++c) {
    labels.insert(labels.end(), alloc[c], c);
  }
  return labels;
}

Matrix InitSyntheticFeatures(const SourceGraph& source,
                             const std::vector<int>& synthetic_labels,
                             Rng& rng) {
  const int num_classes =
      1 + *std::max_element(synthetic_labels.begin(), synthetic_labels.end());
  std::vector<std::vector<int>> by_class(num_classes);
  for (int idx : source.labeled) {
    by_class[source.labels[idx]].push_back(idx);
  }
  Matrix x(static_cast<int>(synthetic_labels.size()), source.features.cols());
  for (size_t i = 0; i < synthetic_labels.size(); ++i) {
    const auto& pool = by_class[synthetic_labels[i]];
    BGC_CHECK_MSG(!pool.empty(), "synthetic class without labeled sources");
    const int src = pool[rng.UniformInt(pool.size())];
    x.SetRow(static_cast<int>(i), source.features.RowPtr(src));
    float* row = x.RowPtr(static_cast<int>(i));
    for (int j = 0; j < x.cols(); ++j) {
      row[j] += static_cast<float>(rng.Normal(0.0, 0.05));
    }
  }
  return x;
}

Matrix PropagateFeatures(const graph::CsrMatrix& adj, const Matrix& x,
                         int k) {
  graph::CsrMatrix op = graph::GcnNormalize(adj);
  Matrix z = x;
  for (int i = 0; i < k; ++i) z = op.Multiply(z);
  return z;
}

std::vector<Matrix> PerClassGradients(const Matrix& z,
                                      const std::vector<int>& labels,
                                      const std::vector<int>& labeled,
                                      const Matrix& w, int num_classes) {
  std::vector<std::vector<int>> by_class(num_classes);
  for (int idx : labeled) by_class[labels[idx]].push_back(idx);

  std::vector<Matrix> grads(num_classes);
  for (int c = 0; c < num_classes; ++c) {
    const auto& rows = by_class[c];
    if (rows.empty()) continue;
    Matrix zc = GatherRows(z, rows);
    Matrix probs = RowSoftmax(MatMul(zc, w));
    // Subtract the one-hot target column c from every row.
    for (int i = 0; i < probs.rows(); ++i) probs(i, c) -= 1.0f;
    Matrix g = MatMulTransA(zc, probs);
    ScaleInPlace(g, 1.0f / static_cast<float>(rows.size()));
    grads[c] = std::move(g);
  }
  return grads;
}

ag::Var MatchingDistance(ag::Tape& tape, ag::Var g, const Matrix& target) {
  constexpr float kEps = 1e-6f;
  // Column-wise cosine distance.
  ag::Var t = tape.Constant(target);
  ag::Var num = tape.ColSumOp(tape.Hadamard(g, t));              // 1×C
  ag::Var gn = tape.Sqrt(tape.ColSumOp(tape.Square(g)), kEps);   // 1×C
  Matrix tn(1, target.cols());
  for (int j = 0; j < target.cols(); ++j) {
    float s = 0.0f;
    for (int i = 0; i < target.rows(); ++i) {
      s += target.At(i, j) * target.At(i, j);
    }
    tn.data()[j] = std::sqrt(std::max(s, kEps));
  }
  ag::Var denom = tape.AddConst(tape.MulRowVec(gn, tape.Constant(tn)), kEps);
  ag::Var cos = tape.ElemDiv(num, denom);
  return tape.SumAll(tape.AddConst(tape.Scale(cos, -1.0f), 1.0f));
}

void SgcStep(const Matrix& z, const Matrix& y, Matrix& w, float lr,
             float weight_decay) {
  BGC_CHECK_EQ(z.rows(), y.rows());
  BGC_CHECK_EQ(z.cols(), w.rows());
  Matrix probs = RowSoftmax(MatMul(z, w));
  Matrix diff = Sub(probs, y);
  Matrix g = MatMulTransA(z, diff);
  ScaleInPlace(g, 1.0f / static_cast<float>(z.rows()));
  AddScaledInPlace(g, w, weight_decay);
  AddScaledInPlace(w, g, -lr);
}

}  // namespace bgc::condense
