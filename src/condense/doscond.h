#ifndef BGC_CONDENSE_DOSCOND_H_
#define BGC_CONDENSE_DOSCOND_H_

#include <memory>
#include <string>

#include "src/condense/condenser.h"
#include "src/nn/optimizer.h"
#include "src/nn/param.h"

namespace bgc::condense {

/// DosCond (Jin et al., KDD'22): one-step gradient matching.
///
/// Each epoch draws a fresh surrogate initialization and takes exactly one
/// matching step — no inner surrogate training loop — which the original
/// paper shows loses little quality at a fraction of the cost. The
/// synthetic structure is parameterized directly by free symmetric
/// Bernoulli logits (binarized with a straight-through estimator during
/// matching and thresholded at delivery), DosCond's reparameterized
/// adjacency specialized to its mean path.
class DosCondCondenser : public Condenser {
 public:
  DosCondCondenser() = default;

  void Initialize(const SourceGraph& source, int num_classes,
                  const CondenseConfig& config, Rng& rng) override;
  void Epoch(const SourceGraph& source) override;
  CondensedGraph Result() const override;
  std::string name() const override { return "doscond"; }

 private:
  CondenseConfig config_;
  int num_classes_ = 0;
  std::vector<int> syn_labels_;
  std::vector<std::pair<int, int>> class_ranges_;
  nn::Param x_syn_;
  nn::Param adj_logits_;  // N'×N' (used symmetrized, zero diagonal)
  std::unique_ptr<nn::Adam> feature_opt_;
  std::unique_ptr<nn::Adam> adj_opt_;
  Rng rng_{0};
};

}  // namespace bgc::condense

#endif  // BGC_CONDENSE_DOSCOND_H_
