#include "src/condense/gc_sntk.h"

#include <cmath>

#include "src/autograd/tape.h"
#include "src/condense/common.h"
#include "src/core/check.h"
#include "src/obs/obs.h"
#include "src/tensor/matrix_ops.h"

namespace bgc::condense {
namespace {

constexpr float kPi = 3.14159265358979323846f;

/// Depth-1 ReLU NTK Θ(U, V) between tape expressions. `u`/`v` are feature
/// matrices (rows are points); `d` the feature dimension used to scale the
/// base kernel to O(1).
ag::Var NtkKernel(ag::Tape& t, ag::Var u, ag::Var v, int d) {
  BGC_TRACE_SCOPE("condense.sntk.kernel");
  const float inv_d = 1.0f / static_cast<float>(d);
  ag::Var sigma0 = t.Scale(t.MatMul(u, t.Transpose(v)), inv_d);
  ag::Var nu = t.Scale(t.RowSumOp(t.Square(u)), inv_d);  // a×1
  ag::Var nv = t.Scale(t.RowSumOp(t.Square(v)), inv_d);  // b×1
  ag::Var sqrt_nu = t.Sqrt(nu, 1e-8f);
  ag::Var sqrt_nv = t.Sqrt(nv, 1e-8f);
  ag::Var norm_prod = t.MatMul(sqrt_nu, t.Transpose(sqrt_nv));  // a×b
  ag::Var s = t.ElemDiv(sigma0, t.AddConst(norm_prod, 1e-8f));
  ag::Var acos_s = t.Acos(s);
  ag::Var pi_minus = t.AddConst(t.Scale(acos_s, -1.0f), kPi);
  // κ1 = (s(π - acos s) + sqrt(1 - s²)) / π
  ag::Var one_minus_s2 =
      t.AddConst(t.Scale(t.Square(s), -1.0f), 1.0f);
  ag::Var kappa1 = t.Scale(
      t.Add(t.Hadamard(s, pi_minus), t.Sqrt(one_minus_s2, 1e-8f)),
      1.0f / kPi);
  // κ0 = (π - acos s) / π
  ag::Var kappa0 = t.Scale(pi_minus, 1.0f / kPi);
  return t.Add(t.Hadamard(norm_prod, kappa1), t.Hadamard(sigma0, kappa0));
}

}  // namespace

void GcSntkCondenser::Initialize(const SourceGraph& source, int num_classes,
                                 const CondenseConfig& config, Rng& rng) {
  config_ = config;
  num_classes_ = num_classes;
  rng_ = rng.Fork();
  syn_labels_ =
      AllocateSyntheticLabels(source, num_classes, config.num_condensed);
  y_syn_ = OneHot(syn_labels_, num_classes);
  x_syn_ = nn::Param(InitSyntheticFeatures(source, syn_labels_, rng_));
  opt_ = std::make_unique<nn::Adam>(config.sntk_lr);
}

void GcSntkCondenser::Epoch(const SourceGraph& source) {
  BGC_CHECK_GT(num_classes_, 0);
  const int d = source.features.cols();
  const int n_syn = x_syn_.value.rows();

  // Structure enters through real-side propagation, recomputed every epoch
  // because the backdoor attack mutates the source graph.
  Matrix h = PropagateFeatures(source.adj, source.features, config_.sgc_k);

  // Labeled-node batch.
  std::vector<int> batch = source.labeled;
  if (static_cast<int>(batch.size()) > config_.sntk_batch) {
    std::vector<int> sample = rng_.SampleWithoutReplacement(
        static_cast<int>(batch.size()), config_.sntk_batch);
    std::vector<int> chosen;
    chosen.reserve(sample.size());
    for (int i : sample) chosen.push_back(batch[i]);
    batch = std::move(chosen);
  }
  Matrix h_batch = GatherRows(h, batch);
  std::vector<int> y_batch;
  y_batch.reserve(batch.size());
  for (int i : batch) y_batch.push_back(source.labels[i]);
  Matrix y_target = OneHot(y_batch, num_classes_);

  ag::Tape t;
  ag::Var x = t.Input(x_syn_.value);
  ag::Var hb = t.Constant(h_batch);
  ag::Var k_ss = NtkKernel(t, x, x, d);
  ag::Var k_bs = NtkKernel(t, hb, x, d);
  ag::Var ridge = t.Add(
      k_ss, t.Constant(Scale(Matrix::Identity(n_syn), config_.ridge_lambda)));
  ag::Var alpha = t.Solve(ridge, t.Constant(y_syn_));
  ag::Var pred = t.MatMul(k_bs, alpha);
  ag::Var loss = t.MeanAll(t.Square(t.Sub(pred, t.Constant(y_target))));
  t.Backward(loss);
  x_syn_.grad = t.grad(x);
  opt_->Step({&x_syn_});
}

CondensedGraph GcSntkCondenser::Result() const {
  CondensedGraph out;
  out.adj = graph::CsrMatrix::Identity(x_syn_.value.rows());
  out.features = x_syn_.value;
  out.labels = syn_labels_;
  out.num_classes = num_classes_;
  out.use_structure = false;
  return out;
}

}  // namespace bgc::condense
