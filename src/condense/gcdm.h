#ifndef BGC_CONDENSE_GCDM_H_
#define BGC_CONDENSE_GCDM_H_

#include <memory>
#include <string>

#include "src/condense/condenser.h"
#include "src/nn/optimizer.h"
#include "src/nn/param.h"

namespace bgc::condense {

/// GCDM / CaT-style distribution matching (Liu et al.; Liu, Qiu & Huang):
/// condensation by matching the per-class distribution of propagated
/// embeddings instead of surrogate gradients.
///
/// Each epoch samples a random ReLU projection Θ and minimizes the maximum
/// mean discrepancy (empirical mean embedding distance)
///   Σ_c || mean_{i∈c} φ(Ẑ_i Θ) − mean_{j∈c'} φ(Ẑ'_j Θ) ||²
/// between real (graph-propagated) and synthetic class-conditional
/// features. The synthetic set is structure-free (A' = I), as in CaT.
class GcdmCondenser : public Condenser {
 public:
  GcdmCondenser() = default;

  void Initialize(const SourceGraph& source, int num_classes,
                  const CondenseConfig& config, Rng& rng) override;
  void Epoch(const SourceGraph& source) override;
  CondensedGraph Result() const override;
  std::string name() const override { return "gcdm"; }

 private:
  CondenseConfig config_;
  int num_classes_ = 0;
  std::vector<int> syn_labels_;
  std::vector<std::pair<int, int>> class_ranges_;
  nn::Param x_syn_;
  std::unique_ptr<nn::Adam> opt_;
  Rng rng_{0};
};

}  // namespace bgc::condense

#endif  // BGC_CONDENSE_GCDM_H_
