#ifndef BGC_CONDENSE_GRADIENT_MATCHING_H_
#define BGC_CONDENSE_GRADIENT_MATCHING_H_

#include <memory>
#include <string>

#include "src/condense/condenser.h"
#include "src/nn/optimizer.h"
#include "src/nn/param.h"

namespace bgc::condense {

/// The family of per-class gradient-matching condensers (Zhao et al. DC,
/// Jin et al. GCond). One implementation covers the paper's three members:
///
///   GCond    — SGC surrogate on both sides; synthetic structure learned by
///              a differentiable head (see below).
///   GCond-X  — SGC surrogate on the real side, structure-free synthetic
///              data (A' = I).
///   DC-Graph — structure ignored on both sides (plain linear softmax
///              gradient matching on raw features).
///
/// Per outer epoch: sample a fresh surrogate weight W; take `inner_steps`
/// matching updates of the synthetic data (features and, for GCond,
/// structure parameters in alternation); refresh W by `model_steps` SGC
/// steps on the current synthetic graph — the trajectory-matching schedule
/// of the GCond reference implementation, shortened per outer epoch so a
/// backdoor adversary can interleave trigger updates (Algorithm 1).
///
/// Structure head: GCond's pairwise MLP over [x'_i; x'_j] is replaced by a
/// symmetric low-rank bilinear head A'_ij = σ(h_iᵀh_j + b), h = tanh(X'U),
/// U ∈ R^{d×r}. This keeps A' differentiable in X' and in dedicated
/// structure parameters at O(N'²r) cost instead of O(N'²·d·hidden); the
/// substitution is recorded in DESIGN.md.
class GradientMatchingCondenser : public Condenser {
 public:
  enum class Variant { kGcond, kGcondX, kDcGraph };

  explicit GradientMatchingCondenser(Variant variant) : variant_(variant) {}

  void Initialize(const SourceGraph& source, int num_classes,
                  const CondenseConfig& config, Rng& rng) override;
  void Epoch(const SourceGraph& source) override;
  CondensedGraph Result() const override;
  std::string name() const override;

  /// Full checkpoint support: the exported state (synthetic tensors, both
  /// Adam optimizers' moments and step counters, the surrogate weights,
  /// and the private RNG stream) restores a run that continues bit-
  /// identically with the uninterrupted trajectory.
  bool SupportsCheckpoint() const override { return true; }
  CondenserState ExportState() const override;
  void RestoreState(const SourceGraph& source,
                    const CondenserState& state) override;

  /// Dense learned adjacency σ(tanh(X'U)tanh(X'U)ᵀ + b) with zero diagonal
  /// (continuous, un-thresholded). Only meaningful for the GCond variant.
  Matrix LearnedAdjacency() const;

 private:
  /// Recomputes class_ranges_ from syn_labels_ (Initialize and restore).
  void RebuildClassRanges();

  Variant variant_;
  CondenseConfig config_;
  int num_classes_ = 0;
  std::vector<int> syn_labels_;
  // Class-contiguous row ranges into the synthetic feature matrix.
  std::vector<std::pair<int, int>> class_ranges_;
  nn::Param x_syn_;
  nn::Param adj_u_;     // d×r structure head
  nn::Param adj_bias_;  // 1×1
  std::unique_ptr<nn::Adam> feature_opt_;
  std::unique_ptr<nn::Adam> adj_opt_;
  Matrix surrogate_w_;  // d×C, resampled every epoch
  Rng rng_{0};
  long long epoch_count_ = 0;
};

}  // namespace bgc::condense

#endif  // BGC_CONDENSE_GRADIENT_MATCHING_H_
