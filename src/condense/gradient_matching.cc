#include "src/condense/gradient_matching.h"

#include <array>
#include <cmath>
#include <utility>

#include "src/autograd/tape.h"
#include "src/condense/common.h"
#include "src/core/check.h"
#include "src/obs/obs.h"
#include "src/tensor/matrix_ops.h"

namespace bgc::condense {
namespace {

/// Builds the synthetic normalized dense operator Â' on the tape:
/// A' = σ(tanh(X'U) tanh(X'U)ᵀ / sqrt(r) + b), diag zeroed, then
/// D^{-1/2}(A' + I)D^{-1/2}.
ag::Var NormalizedLearnedAdjacency(ag::Tape& t, ag::Var x, ag::Var u,
                                   ag::Var bias, int n, int rank) {
  ag::Var h = t.Tanh(t.MatMul(x, u));
  ag::Var raw = t.Scale(t.MatMul(h, t.Transpose(h)),
                        1.0f / std::sqrt(static_cast<float>(rank)));
  // Broadcast the scalar bias over all entries.
  ag::Var bias_col = t.MatMul(t.Constant(Matrix(n, 1, 1.0f)), bias);  // n×1
  ag::Var bias_full =
      t.MatMul(bias_col, t.Constant(Matrix(1, n, 1.0f)));             // n×n
  ag::Var a = t.Sigmoid(t.Add(raw, bias_full));
  // Match the delivered graph's sparsification: entries ≤ 0.5 are zeroed
  // (straight-through, so sub-threshold pairs still receive gradient and
  // can grow past the threshold). Without this mask the many small sigmoid
  // values act as a dense all-pairs smoother during matching that the
  // thresholded result the victim trains on never reproduces.
  a = t.Hadamard(a, t.BinarizeSte(a, 0.5f));
  // Zero the diagonal (no learned self-loops; the +I below adds them).
  Matrix mask(n, n, 1.0f);
  for (int i = 0; i < n; ++i) mask(i, i) = 0.0f;
  a = t.Hadamard(a, t.Constant(mask));
  ag::Var hat = t.Add(a, t.Constant(Matrix::Identity(n)));
  ag::Var deg = t.RowSumOp(hat);
  ag::Var inv_sqrt =
      t.ElemDiv(t.Constant(Matrix(n, 1, 1.0f)), t.Sqrt(deg, 1e-8f));
  ag::Var norm = t.MulColVec(hat, inv_sqrt);
  return t.MulRowVec(norm, t.Transpose(inv_sqrt));
}

}  // namespace

void GradientMatchingCondenser::Initialize(const SourceGraph& source,
                                           int num_classes,
                                           const CondenseConfig& config,
                                           Rng& rng) {
  config_ = config;
  num_classes_ = num_classes;
  rng_ = rng.Fork();
  syn_labels_ =
      AllocateSyntheticLabels(source, num_classes, config.num_condensed);
  RebuildClassRanges();
  x_syn_ = nn::Param(InitSyntheticFeatures(source, syn_labels_, rng_));
  const int d = source.features.cols();
  adj_u_ = nn::Param(Matrix::GlorotUniform(d, config.adj_rank, rng_));
  // Sparse prior: σ(-2) ≈ 0.12 keeps the initial learned adjacency below
  // the 0.5 threshold, so structure is added only where matching demands
  // it (an untrained dense A' collapses classes under propagation).
  adj_bias_ = nn::Param(Matrix(1, 1, config.adj_bias_init));
  const float feature_lr = variant_ == Variant::kDcGraph
                               ? config.dc_feature_lr
                               : config.feature_lr;
  feature_opt_ = std::make_unique<nn::Adam>(feature_lr);
  adj_opt_ = std::make_unique<nn::Adam>(config.adj_lr);
  surrogate_w_ = Matrix::GlorotUniform(d, num_classes, rng_);
  epoch_count_ = 0;
}

void GradientMatchingCondenser::Epoch(const SourceGraph& source) {
  BGC_CHECK_GT(num_classes_, 0);
  const int d = source.features.cols();
  const int n_syn = x_syn_.value.rows();
  // Fresh surrogate initialization each epoch: gradient matching across
  // random initializations is what makes the condensed data trajectory-
  // agnostic (DC/GCond's outer loop over model inits).
  surrogate_w_ = Matrix::GlorotUniform(d, num_classes_, rng_);

  // Real-side propagated features, recomputed because the source mutates
  // under the backdoor attack.
  const bool propagate_real = variant_ != Variant::kDcGraph;
  Matrix z_real = propagate_real
                      ? PropagateFeatures(source.adj, source.features,
                                          config_.sgc_k)
                      : source.features;

  // The inner loop rebuilds an identically-shaped tape every step; reusing
  // one tape keeps its node storage and recycles every intermediate
  // matrix through the buffer arena.
  ag::Tape t;
  for (int inner = 0; inner < config_.inner_steps; ++inner) {
    BGC_TRACE_SCOPE("condense.gm.inner");
    BGC_COUNTER_ADD("condense.gm.inner_steps", 1);
    std::vector<Matrix> real_grads = PerClassGradients(
        z_real, source.labels, source.labeled, surrogate_w_, num_classes_);

    t.Reset();
    ag::Var x = t.Input(x_syn_.value);
    ag::Var u = t.Input(adj_u_.value);
    ag::Var bias = t.Input(adj_bias_.value);
    ag::Var z_syn = x;
    if (variant_ == Variant::kGcond) {
      ag::Var op = NormalizedLearnedAdjacency(t, x, u, bias, n_syn,
                                              config_.adj_rank);
      for (int k = 0; k < config_.sgc_k; ++k) z_syn = t.MatMul(op, z_syn);
    }
    // GCond-X / DC-Graph: A' = I, so Â'^k X' = X' (degree-1 self loops).

    ag::Var w_const = t.Constant(surrogate_w_);
    ag::Var loss{};
    bool has_loss = false;
    for (int c = 0; c < num_classes_; ++c) {
      if (real_grads[c].empty()) continue;
      auto [begin, end] = class_ranges_[c];
      if (begin == end) continue;
      std::vector<int> rows;
      rows.reserve(end - begin);
      for (int i = begin; i < end; ++i) rows.push_back(i);
      ag::Var zc = t.GatherRows(z_syn, rows);
      ag::Var probs = t.Softmax(t.MatMul(zc, w_const));
      Matrix onehot(end - begin, num_classes_);
      for (int i = 0; i < end - begin; ++i) onehot(i, c) = 1.0f;
      ag::Var diff = t.Sub(probs, t.Constant(onehot));
      ag::Var g = t.Scale(t.MatMul(t.Transpose(zc), diff),
                          1.0f / static_cast<float>(end - begin));
      ag::Var term = MatchingDistance(t, g, real_grads[c]);
      loss = has_loss ? t.Add(loss, term) : term;
      has_loss = true;
    }
    BGC_CHECK(has_loss);
    t.Backward(loss);

    // GCond alternates feature and structure updates (its outer schedule);
    // the structure-free variants always update features.
    const bool update_adj =
        variant_ == Variant::kGcond && (epoch_count_ + inner) % 2 == 1;
    if (update_adj) {
      adj_u_.grad = t.grad(u);
      adj_bias_.grad = t.grad(bias);
      adj_opt_->Step({&adj_u_, &adj_bias_});
    } else {
      x_syn_.grad = t.grad(x);
      feature_opt_->Step({&x_syn_});
    }
  }

  // Refresh the surrogate on the updated synthetic data so the next epoch
  // matches gradients a little further along the training trajectory.
  BGC_TRACE_SCOPE("condense.gm.refresh");
  CondensedGraph current = Result();
  Matrix z_syn_const =
      current.use_structure
          ? PropagateFeatures(current.adj, current.features, config_.sgc_k)
          : current.features;
  Matrix y_syn = OneHot(syn_labels_, num_classes_);
  const float model_lr = variant_ == Variant::kDcGraph
                             ? config_.dc_model_lr
                             : config_.model_lr;
  for (int s = 0; s < config_.model_steps; ++s) {
    SgcStep(z_syn_const, y_syn, surrogate_w_, model_lr);
  }
  ++epoch_count_;
}

Matrix GradientMatchingCondenser::LearnedAdjacency() const {
  const Matrix h = TanhMat(MatMul(x_syn_.value, adj_u_.value));
  Matrix raw = MatMulTransB(h, h);
  ScaleInPlace(raw, 1.0f / std::sqrt(static_cast<float>(config_.adj_rank)));
  const float b = adj_bias_.value.At(0, 0);
  Matrix a(raw.rows(), raw.cols());
  for (int i = 0; i < raw.rows(); ++i) {
    for (int j = 0; j < raw.cols(); ++j) {
      a(i, j) = i == j ? 0.0f
                       : 1.0f / (1.0f + std::exp(-(raw(i, j) + b)));
    }
  }
  return a;
}

CondensedGraph GradientMatchingCondenser::Result() const {
  CondensedGraph out;
  out.features = x_syn_.value;
  out.labels = syn_labels_;
  out.num_classes = num_classes_;
  out.use_structure = variant_ == Variant::kGcond;
  if (out.use_structure) {
    // GCond sparsifies the learned adjacency: entries ≤ 0.5 dropped,
    // surviving weights kept continuous.
    out.adj = graph::CsrMatrix::FromDense(LearnedAdjacency(), 0.5f);
  } else {
    out.adj = graph::CsrMatrix::Identity(out.features.rows());
  }
  return out;
}

void GradientMatchingCondenser::RebuildClassRanges() {
  class_ranges_.assign(num_classes_, {0, 0});
  for (int c = 0, pos = 0; c < num_classes_; ++c) {
    int count = 0;
    while (pos + count < static_cast<int>(syn_labels_.size()) &&
           syn_labels_[pos + count] == c) {
      ++count;
    }
    class_ranges_[c] = {pos, pos + count};
    pos += count;
  }
}

CondenserState GradientMatchingCondenser::ExportState() const {
  CondenserState s;
  s.method = name();
  s.epoch = epoch_count_;
  s.num_classes = num_classes_;
  s.config = config_;
  s.syn_labels = syn_labels_;
  s.tensors.emplace_back("x_syn", x_syn_.value);
  s.tensors.emplace_back("adj_u", adj_u_.value);
  s.tensors.emplace_back("adj_bias", adj_bias_.value);
  s.tensors.emplace_back("surrogate_w", surrogate_w_);
  auto put_adam = [&s](const std::string& opt_name, const nn::Adam& opt,
                       const nn::Param& p, const std::string& pname) {
    nn::Adam::ParamState ps = opt.ExportState(&p);
    s.tensors.emplace_back(opt_name + ".m." + pname, std::move(ps.m));
    s.tensors.emplace_back(opt_name + ".v." + pname, std::move(ps.v));
  };
  put_adam("adam.feature", *feature_opt_, x_syn_, "x_syn");
  put_adam("adam.adj", *adj_opt_, adj_u_, "adj_u");
  put_adam("adam.adj", *adj_opt_, adj_bias_, "adj_bias");
  s.scalars.emplace_back("adam.feature.t", feature_opt_->step_count());
  s.scalars.emplace_back("adam.adj.t", adj_opt_->step_count());
  const auto words = rng_.SaveState();
  s.rng_state.assign(words.begin(), words.end());
  return s;
}

void GradientMatchingCondenser::RestoreState(const SourceGraph& source,
                                             const CondenserState& state) {
  BGC_CHECK_MSG(state.method == name(),
                "checkpoint was produced by \"" + state.method +
                    "\", cannot restore into \"" + name() + "\"");
  config_ = state.config;
  num_classes_ = state.num_classes;
  BGC_CHECK_GT(num_classes_, 0);
  syn_labels_ = state.syn_labels;
  RebuildClassRanges();

  auto tensor = [&state](const std::string& tname) -> const Matrix& {
    for (const auto& [n, m] : state.tensors) {
      if (n == tname) return m;
    }
    BGC_CHECK_MSG(false, "checkpoint is missing tensor \"" + tname + "\"");
    return state.tensors.front().second;  // unreachable
  };
  auto scalar = [&state](const std::string& sname) -> long long {
    for (const auto& [n, v] : state.scalars) {
      if (n == sname) return v;
    }
    BGC_CHECK_MSG(false, "checkpoint is missing scalar \"" + sname + "\"");
    return 0;  // unreachable
  };

  x_syn_ = nn::Param(tensor("x_syn"));
  adj_u_ = nn::Param(tensor("adj_u"));
  adj_bias_ = nn::Param(tensor("adj_bias"));
  surrogate_w_ = tensor("surrogate_w");
  BGC_CHECK_EQ(x_syn_.value.cols(), source.features.cols());
  BGC_CHECK_EQ(x_syn_.value.rows(), static_cast<int>(syn_labels_.size()));

  const float feature_lr = variant_ == Variant::kDcGraph
                               ? config_.dc_feature_lr
                               : config_.feature_lr;
  feature_opt_ = std::make_unique<nn::Adam>(feature_lr);
  adj_opt_ = std::make_unique<nn::Adam>(config_.adj_lr);
  feature_opt_->RestoreState(
      &x_syn_, {tensor("adam.feature.m.x_syn"), tensor("adam.feature.v.x_syn")});
  adj_opt_->RestoreState(
      &adj_u_, {tensor("adam.adj.m.adj_u"), tensor("adam.adj.v.adj_u")});
  adj_opt_->RestoreState(
      &adj_bias_, {tensor("adam.adj.m.adj_bias"), tensor("adam.adj.v.adj_bias")});
  feature_opt_->set_step_count(scalar("adam.feature.t"));
  adj_opt_->set_step_count(scalar("adam.adj.t"));

  BGC_CHECK_EQ(state.rng_state.size(),
               static_cast<size_t>(Rng::kStateWords));
  std::array<uint64_t, Rng::kStateWords> words{};
  for (int i = 0; i < Rng::kStateWords; ++i) words[i] = state.rng_state[i];
  rng_.RestoreState(words);
  epoch_count_ = state.epoch;
}

std::string GradientMatchingCondenser::name() const {
  switch (variant_) {
    case Variant::kGcond:
      return "gcond";
    case Variant::kGcondX:
      return "gcond-x";
    case Variant::kDcGraph:
      return "dc-graph";
  }
  return "unknown";
}

}  // namespace bgc::condense
