#include "src/autograd/tape.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <utility>

#include "src/core/arena.h"
#include "src/core/check.h"
#include "src/core/thread_pool.h"
#include "src/obs/obs.h"
#include "src/tensor/linalg.h"
#include "src/tensor/matrix_ops.h"

namespace bgc::ag {

namespace {

[[noreturn]] void DieBadBackwardMode(const char* value) {
  std::fprintf(stderr,
               "bgc: BGC_AUTOGRAD=%s is not understood; valid values are "
               "serial|parallel\n",
               value);
  std::exit(2);
}

BackwardMode ModeFromEnv() {
  const char* env = std::getenv("BGC_AUTOGRAD");
  if (env == nullptr || env[0] == '\0' ||
      std::strcmp(env, "parallel") == 0) {
    return BackwardMode::kParallel;
  }
  if (std::strcmp(env, "serial") == 0) return BackwardMode::kSerial;
  DieBadBackwardMode(env);
}

BackwardMode& ModeSingleton() {
  static BackwardMode mode = ModeFromEnv();
  return mode;
}

// Id of the op whose backward closure this thread is currently executing
// in a parallel sweep (-1 outside one). Routes Accumulate into the right
// contribution slot.
thread_local int t_current_op = -1;

}  // namespace

// Planning + runtime state for one parallel Backward() sweep.
struct Tape::ParallelCtx {
  // One pending contribution from one consumer op into one parent. A
  // consumer may append more than one matrix (Add(a, a) accumulates twice);
  // call order within the slot is preserved.
  struct Slot {
    int consumer = -1;
    std::vector<Matrix> contribs;
  };

  struct NodeState {
    // Will receive gradient: requires_grad and reachable from the loss
    // through running consumers (or is the loss itself).
    bool receives = false;
    // Will execute its backward closure: receives and has a closure.
    bool runs = false;
    // Slots in descending consumer-id order — the order the serial walk
    // would have accumulated in. Built single-threaded during planning;
    // each slot is then written only by the thread running its consumer.
    std::vector<Slot> slots;
    // Running consumers that have not yet completed. The op that takes
    // this to zero folds the slots into the node's grad.
    std::atomic<int> pending{0};
  };

  explicit ParallelCtx(int n) : st(n) {}
  std::vector<NodeState> st;
};

BackwardMode Tape::ActiveBackwardMode() { return ModeSingleton(); }

BackwardMode Tape::SetBackwardModeForTesting(BackwardMode mode) {
  BackwardMode previous = ModeSingleton();
  ModeSingleton() = mode;
  return previous;
}

Var Tape::Emit(Matrix value, bool requires_grad,
               std::function<void(Tape&)> backward, Var p0, Var p1) {
  Node n;
  n.value = std::move(value);
  n.requires_grad = requires_grad;
  n.parents = {{p0.id, p1.id}};
  n.backward = std::move(backward);
  nodes_.push_back(std::move(n));
  return Var{static_cast<int>(nodes_.size()) - 1};
}

Tape::Node& Tape::node(Var v) {
  BGC_CHECK_GE(v.id, 0);
  BGC_CHECK_LT(v.id, static_cast<int>(nodes_.size()));
  return nodes_[v.id];
}

const Tape::Node& Tape::node(Var v) const {
  BGC_CHECK_GE(v.id, 0);
  BGC_CHECK_LT(v.id, static_cast<int>(nodes_.size()));
  return nodes_[v.id];
}

void Tape::Accumulate(Var v, const Matrix& g) {
  Node& n = node(v);
  if (!n.requires_grad) return;
  if (pctx_ != nullptr && t_current_op >= 0) {
    // Parallel sweep: park the contribution in this consumer's slot; the
    // fold (descending consumer order) reproduces serial addition order.
    ParallelCtx::NodeState& st = pctx_->st[v.id];
    auto it = std::lower_bound(
        st.slots.begin(), st.slots.end(), t_current_op,
        [](const ParallelCtx::Slot& s, int op) { return s.consumer > op; });
    BGC_CHECK(it != st.slots.end());
    BGC_CHECK_EQ(it->consumer, t_current_op);
    it->contribs.push_back(g);
    return;
  }
  if (n.grad.empty()) {
    n.grad = g;
  } else {
    AddScaledInPlace(n.grad, g, 1.0f);
  }
}

Var Tape::Input(Matrix value) {
  return Emit(std::move(value), /*requires_grad=*/true, nullptr);
}

Var Tape::Constant(Matrix value) {
  return Emit(std::move(value), /*requires_grad=*/false, nullptr);
}

Var Tape::Add(Var a, Var b) {
  Matrix out = bgc::Add(node(a).value, node(b).value);
  const bool rg = node(a).requires_grad || node(b).requires_grad;
  Var result{static_cast<int>(nodes_.size())};
  return Emit(std::move(out), rg, [a, b, result](Tape& t) {
    const Matrix& g = t.node(result).grad;
    t.Accumulate(a, g);
    t.Accumulate(b, g);
  }, a, b);
}

Var Tape::Sub(Var a, Var b) {
  Matrix out = bgc::Sub(node(a).value, node(b).value);
  const bool rg = node(a).requires_grad || node(b).requires_grad;
  Var result{static_cast<int>(nodes_.size())};
  return Emit(std::move(out), rg, [a, b, result](Tape& t) {
    const Matrix& g = t.node(result).grad;
    t.Accumulate(a, g);
    t.Accumulate(b, bgc::Scale(g, -1.0f));
  }, a, b);
}

Var Tape::Hadamard(Var a, Var b) {
  Matrix out = bgc::Hadamard(node(a).value, node(b).value);
  const bool rg = node(a).requires_grad || node(b).requires_grad;
  Var result{static_cast<int>(nodes_.size())};
  return Emit(std::move(out), rg, [a, b, result](Tape& t) {
    const Matrix& g = t.node(result).grad;
    t.Accumulate(a, bgc::Hadamard(g, t.node(b).value));
    t.Accumulate(b, bgc::Hadamard(g, t.node(a).value));
  }, a, b);
}

Var Tape::ElemDiv(Var a, Var b) {
  const Matrix& av = node(a).value;
  const Matrix& bv = node(b).value;
  BGC_CHECK_EQ(av.rows(), bv.rows());
  BGC_CHECK_EQ(av.cols(), bv.cols());
  Matrix out(av.rows(), av.cols());
  for (int i = 0; i < out.size(); ++i) out.data()[i] = av.data()[i] / bv.data()[i];
  const bool rg = node(a).requires_grad || node(b).requires_grad;
  Var result{static_cast<int>(nodes_.size())};
  return Emit(std::move(out), rg, [a, b, result](Tape& t) {
    const Matrix& g = t.node(result).grad;
    const Matrix& bv2 = t.node(b).value;
    const Matrix& cv = t.node(result).value;
    Matrix ga(g.rows(), g.cols());
    Matrix gb(g.rows(), g.cols());
    for (int i = 0; i < g.size(); ++i) {
      ga.data()[i] = g.data()[i] / bv2.data()[i];
      gb.data()[i] = -g.data()[i] * cv.data()[i] / bv2.data()[i];
    }
    t.Accumulate(a, ga);
    t.Accumulate(b, gb);
  }, a, b);
}

Var Tape::Scale(Var a, float s) {
  Matrix out = bgc::Scale(node(a).value, s);
  Var result{static_cast<int>(nodes_.size())};
  return Emit(std::move(out), node(a).requires_grad, [a, s, result](Tape& t) {
    t.Accumulate(a, bgc::Scale(t.node(result).grad, s));
  }, a);
}

Var Tape::AddConst(Var a, float c) {
  Matrix out = node(a).value;
  for (int i = 0; i < out.size(); ++i) out.data()[i] += c;
  Var result{static_cast<int>(nodes_.size())};
  return Emit(std::move(out), node(a).requires_grad, [a, result](Tape& t) {
    t.Accumulate(a, t.node(result).grad);
  }, a);
}

Var Tape::Relu(Var a) {
  Matrix out = bgc::Relu(node(a).value);
  Var result{static_cast<int>(nodes_.size())};
  return Emit(std::move(out), node(a).requires_grad, [a, result](Tape& t) {
    const Matrix& g = t.node(result).grad;
    const Matrix& y = t.node(result).value;
    Matrix ga(g.rows(), g.cols());
    for (int i = 0; i < g.size(); ++i) {
      ga.data()[i] = y.data()[i] > 0.0f ? g.data()[i] : 0.0f;
    }
    t.Accumulate(a, ga);
  }, a);
}

Var Tape::Sigmoid(Var a) {
  Matrix out = bgc::Sigmoid(node(a).value);
  Var result{static_cast<int>(nodes_.size())};
  return Emit(std::move(out), node(a).requires_grad, [a, result](Tape& t) {
    const Matrix& g = t.node(result).grad;
    const Matrix& y = t.node(result).value;
    Matrix ga(g.rows(), g.cols());
    for (int i = 0; i < g.size(); ++i) {
      const float s = y.data()[i];
      ga.data()[i] = g.data()[i] * s * (1.0f - s);
    }
    t.Accumulate(a, ga);
  }, a);
}

Var Tape::Tanh(Var a) {
  Matrix out = bgc::TanhMat(node(a).value);
  Var result{static_cast<int>(nodes_.size())};
  return Emit(std::move(out), node(a).requires_grad, [a, result](Tape& t) {
    const Matrix& g = t.node(result).grad;
    const Matrix& y = t.node(result).value;
    Matrix ga(g.rows(), g.cols());
    for (int i = 0; i < g.size(); ++i) {
      const float s = y.data()[i];
      ga.data()[i] = g.data()[i] * (1.0f - s * s);
    }
    t.Accumulate(a, ga);
  }, a);
}

Var Tape::Exp(Var a) {
  Matrix out = node(a).value;
  for (int i = 0; i < out.size(); ++i) out.data()[i] = std::exp(out.data()[i]);
  Var result{static_cast<int>(nodes_.size())};
  return Emit(std::move(out), node(a).requires_grad, [a, result](Tape& t) {
    t.Accumulate(a, bgc::Hadamard(t.node(result).grad, t.node(result).value));
  }, a);
}

Var Tape::Log(Var a, float eps) {
  const Matrix& av = node(a).value;
  Matrix out(av.rows(), av.cols());
  for (int i = 0; i < out.size(); ++i) {
    out.data()[i] = std::log(std::max(av.data()[i], eps));
  }
  Var result{static_cast<int>(nodes_.size())};
  return Emit(std::move(out), node(a).requires_grad,
              [a, eps, result](Tape& t) {
    const Matrix& g = t.node(result).grad;
    const Matrix& av2 = t.node(a).value;
    Matrix ga(g.rows(), g.cols());
    for (int i = 0; i < g.size(); ++i) {
      ga.data()[i] = g.data()[i] / std::max(av2.data()[i], eps);
    }
    t.Accumulate(a, ga);
  }, a);
}

Var Tape::Sqrt(Var a, float eps) {
  const Matrix& av = node(a).value;
  Matrix out(av.rows(), av.cols());
  for (int i = 0; i < out.size(); ++i) {
    out.data()[i] = std::sqrt(std::max(av.data()[i], eps));
  }
  Var result{static_cast<int>(nodes_.size())};
  return Emit(std::move(out), node(a).requires_grad, [a, result](Tape& t) {
    const Matrix& g = t.node(result).grad;
    const Matrix& y = t.node(result).value;
    Matrix ga(g.rows(), g.cols());
    for (int i = 0; i < g.size(); ++i) {
      ga.data()[i] = 0.5f * g.data()[i] / std::max(y.data()[i], 1e-12f);
    }
    t.Accumulate(a, ga);
  }, a);
}

Var Tape::Square(Var a) {
  Matrix out = bgc::Hadamard(node(a).value, node(a).value);
  Var result{static_cast<int>(nodes_.size())};
  return Emit(std::move(out), node(a).requires_grad, [a, result](Tape& t) {
    Matrix ga = bgc::Hadamard(t.node(result).grad, t.node(a).value);
    ScaleInPlace(ga, 2.0f);
    t.Accumulate(a, ga);
  }, a);
}

Var Tape::Acos(Var a, float eps) {
  const Matrix& av = node(a).value;
  Matrix out(av.rows(), av.cols());
  for (int i = 0; i < out.size(); ++i) {
    const float t = std::min(1.0f - eps, std::max(-1.0f + eps, av.data()[i]));
    out.data()[i] = std::acos(t);
  }
  Var result{static_cast<int>(nodes_.size())};
  return Emit(std::move(out), node(a).requires_grad,
              [a, eps, result](Tape& t) {
    const Matrix& g = t.node(result).grad;
    const Matrix& av2 = t.node(a).value;
    Matrix ga(g.rows(), g.cols());
    for (int i = 0; i < g.size(); ++i) {
      const float x =
          std::min(1.0f - eps, std::max(-1.0f + eps, av2.data()[i]));
      ga.data()[i] = -g.data()[i] / std::sqrt(1.0f - x * x);
    }
    t.Accumulate(a, ga);
  }, a);
}

Var Tape::Clamp(Var a, float lo, float hi) {
  const Matrix& av = node(a).value;
  Matrix out(av.rows(), av.cols());
  for (int i = 0; i < out.size(); ++i) {
    out.data()[i] = std::min(hi, std::max(lo, av.data()[i]));
  }
  Var result{static_cast<int>(nodes_.size())};
  return Emit(std::move(out), node(a).requires_grad,
              [a, lo, hi, result](Tape& t) {
    const Matrix& g = t.node(result).grad;
    const Matrix& av2 = t.node(a).value;
    Matrix ga(g.rows(), g.cols());
    for (int i = 0; i < g.size(); ++i) {
      const float x = av2.data()[i];
      ga.data()[i] = (x > lo && x < hi) ? g.data()[i] : 0.0f;
    }
    t.Accumulate(a, ga);
  }, a);
}

Var Tape::BinarizeSte(Var a, float threshold) {
  const Matrix& av = node(a).value;
  Matrix out(av.rows(), av.cols());
  for (int i = 0; i < out.size(); ++i) {
    out.data()[i] = av.data()[i] > threshold ? 1.0f : 0.0f;
  }
  Var result{static_cast<int>(nodes_.size())};
  return Emit(std::move(out), node(a).requires_grad, [a, result](Tape& t) {
    t.Accumulate(a, t.node(result).grad);  // straight-through
  }, a);
}

Var Tape::Reshape(Var a, int rows, int cols) {
  const Matrix& av = node(a).value;
  BGC_CHECK_EQ(av.size(), rows * cols);
  Matrix out(rows, cols,
             std::vector<float>(av.data(), av.data() + av.size()));
  const int orig_rows = av.rows(), orig_cols = av.cols();
  Var result{static_cast<int>(nodes_.size())};
  return Emit(std::move(out), node(a).requires_grad,
              [a, orig_rows, orig_cols, result](Tape& t) {
    const Matrix& g = t.node(result).grad;
    Matrix ga(orig_rows, orig_cols,
              std::vector<float>(g.data(), g.data() + g.size()));
    t.Accumulate(a, ga);
  }, a);
}

Var Tape::Transpose(Var a) {
  Matrix out = bgc::Transpose(node(a).value);
  Var result{static_cast<int>(nodes_.size())};
  return Emit(std::move(out), node(a).requires_grad, [a, result](Tape& t) {
    t.Accumulate(a, bgc::Transpose(t.node(result).grad));
  }, a);
}

Var Tape::ConcatRows(Var a, Var b) {
  Matrix out = bgc::ConcatRows(node(a).value, node(b).value);
  const bool rg = node(a).requires_grad || node(b).requires_grad;
  const int split = node(a).value.rows();
  Var result{static_cast<int>(nodes_.size())};
  return Emit(std::move(out), rg, [a, b, split, result](Tape& t) {
    const Matrix& g = t.node(result).grad;
    Matrix ga(split, g.cols());
    Matrix gb(g.rows() - split, g.cols());
    for (int i = 0; i < split; ++i) ga.SetRow(i, g.RowPtr(i));
    for (int i = split; i < g.rows(); ++i) gb.SetRow(i - split, g.RowPtr(i));
    t.Accumulate(a, ga);
    t.Accumulate(b, gb);
  }, a, b);
}

Var Tape::ConcatCols(Var a, Var b) {
  Matrix out = bgc::ConcatCols(node(a).value, node(b).value);
  const bool rg = node(a).requires_grad || node(b).requires_grad;
  const int split = node(a).value.cols();
  Var result{static_cast<int>(nodes_.size())};
  return Emit(std::move(out), rg, [a, b, split, result](Tape& t) {
    const Matrix& g = t.node(result).grad;
    Matrix ga(g.rows(), split);
    Matrix gb(g.rows(), g.cols() - split);
    for (int i = 0; i < g.rows(); ++i) {
      const float* row = g.RowPtr(i);
      for (int j = 0; j < split; ++j) ga(i, j) = row[j];
      for (int j = split; j < g.cols(); ++j) gb(i, j - split) = row[j];
    }
    t.Accumulate(a, ga);
    t.Accumulate(b, gb);
  }, a, b);
}

Var Tape::GatherRows(Var a, std::vector<int> rows) {
  Matrix out = bgc::GatherRows(node(a).value, rows);
  const int parent_rows = node(a).value.rows();
  Var result{static_cast<int>(nodes_.size())};
  return Emit(std::move(out), node(a).requires_grad,
              [a, rows = std::move(rows), parent_rows, result](Tape& t) {
    const Matrix& g = t.node(result).grad;
    Matrix ga(parent_rows, g.cols());
    ScatterAddRows(g, rows, ga);
    t.Accumulate(a, ga);
  }, a);
}

Var Tape::RowSumOp(Var a) {
  Matrix out = bgc::RowSum(node(a).value);
  const int cols = node(a).value.cols();
  Var result{static_cast<int>(nodes_.size())};
  return Emit(std::move(out), node(a).requires_grad,
              [a, cols, result](Tape& t) {
    const Matrix& g = t.node(result).grad;
    Matrix ga(g.rows(), cols);
    for (int i = 0; i < g.rows(); ++i) {
      float* row = ga.RowPtr(i);
      const float v = g(i, 0);
      for (int j = 0; j < cols; ++j) row[j] = v;
    }
    t.Accumulate(a, ga);
  }, a);
}

Var Tape::ColSumOp(Var a) {
  Matrix out = bgc::ColSum(node(a).value);
  const int rows = node(a).value.rows();
  Var result{static_cast<int>(nodes_.size())};
  return Emit(std::move(out), node(a).requires_grad,
              [a, rows, result](Tape& t) {
    const Matrix& g = t.node(result).grad;
    Matrix ga(rows, g.cols());
    for (int i = 0; i < rows; ++i) ga.SetRow(i, g.data());
    t.Accumulate(a, ga);
  }, a);
}

Var Tape::SumAll(Var a) {
  Matrix out(1, 1);
  out(0, 0) = bgc::Sum(node(a).value);
  const int rows = node(a).value.rows();
  const int cols = node(a).value.cols();
  Var result{static_cast<int>(nodes_.size())};
  return Emit(std::move(out), node(a).requires_grad,
              [a, rows, cols, result](Tape& t) {
    t.Accumulate(a, Matrix::Full(rows, cols, t.node(result).grad(0, 0)));
  }, a);
}

Var Tape::MeanAll(Var a) {
  const int n = node(a).value.size();
  BGC_CHECK_GT(n, 0);
  Var s = SumAll(a);
  return Scale(s, 1.0f / static_cast<float>(n));
}

Var Tape::MulColVec(Var a, Var v) {
  const Matrix& av = node(a).value;
  const Matrix& vv = node(v).value;
  BGC_CHECK_EQ(vv.cols(), 1);
  BGC_CHECK_EQ(vv.rows(), av.rows());
  Matrix out = av;
  for (int i = 0; i < out.rows(); ++i) {
    float* row = out.RowPtr(i);
    const float s = vv(i, 0);
    for (int j = 0; j < out.cols(); ++j) row[j] *= s;
  }
  const bool rg = node(a).requires_grad || node(v).requires_grad;
  Var result{static_cast<int>(nodes_.size())};
  return Emit(std::move(out), rg, [a, v, result](Tape& t) {
    const Matrix& g = t.node(result).grad;
    const Matrix& av2 = t.node(a).value;
    const Matrix& vv2 = t.node(v).value;
    Matrix ga(g.rows(), g.cols());
    Matrix gv(g.rows(), 1);
    for (int i = 0; i < g.rows(); ++i) {
      const float s = vv2(i, 0);
      const float* grow = g.RowPtr(i);
      const float* arow = av2.RowPtr(i);
      float* garow = ga.RowPtr(i);
      float acc = 0.0f;
      for (int j = 0; j < g.cols(); ++j) {
        garow[j] = grow[j] * s;
        acc += grow[j] * arow[j];
      }
      gv(i, 0) = acc;
    }
    t.Accumulate(a, ga);
    t.Accumulate(v, gv);
  }, a, v);
}

Var Tape::MulRowVec(Var a, Var v) {
  const Matrix& av = node(a).value;
  const Matrix& vv = node(v).value;
  BGC_CHECK_EQ(vv.rows(), 1);
  BGC_CHECK_EQ(vv.cols(), av.cols());
  Matrix out = av;
  for (int i = 0; i < out.rows(); ++i) {
    float* row = out.RowPtr(i);
    for (int j = 0; j < out.cols(); ++j) row[j] *= vv.data()[j];
  }
  const bool rg = node(a).requires_grad || node(v).requires_grad;
  Var result{static_cast<int>(nodes_.size())};
  return Emit(std::move(out), rg, [a, v, result](Tape& t) {
    const Matrix& g = t.node(result).grad;
    const Matrix& av2 = t.node(a).value;
    const Matrix& vv2 = t.node(v).value;
    Matrix ga(g.rows(), g.cols());
    Matrix gv(1, g.cols());
    for (int i = 0; i < g.rows(); ++i) {
      const float* grow = g.RowPtr(i);
      const float* arow = av2.RowPtr(i);
      float* garow = ga.RowPtr(i);
      for (int j = 0; j < g.cols(); ++j) {
        garow[j] = grow[j] * vv2.data()[j];
        gv.data()[j] += grow[j] * arow[j];
      }
    }
    t.Accumulate(a, ga);
    t.Accumulate(v, gv);
  }, a, v);
}

Var Tape::AddRowVec(Var a, Var bias) {
  Matrix out = bgc::AddRowBroadcast(node(a).value, node(bias).value);
  const bool rg = node(a).requires_grad || node(bias).requires_grad;
  Var result{static_cast<int>(nodes_.size())};
  return Emit(std::move(out), rg, [a, bias, result](Tape& t) {
    const Matrix& g = t.node(result).grad;
    t.Accumulate(a, g);
    t.Accumulate(bias, bgc::ColSum(g));
  }, a, bias);
}

Var Tape::MatMul(Var a, Var b) {
  Matrix out = bgc::MatMul(node(a).value, node(b).value);
  const bool rg = node(a).requires_grad || node(b).requires_grad;
  Var result{static_cast<int>(nodes_.size())};
  return Emit(std::move(out), rg, [a, b, result](Tape& t) {
    const Matrix& g = t.node(result).grad;
    if (t.node(a).requires_grad) {
      t.Accumulate(a, bgc::MatMulTransB(g, t.node(b).value));
    }
    if (t.node(b).requires_grad) {
      t.Accumulate(b, bgc::MatMulTransA(t.node(a).value, g));
    }
  }, a, b);
}

Var Tape::SpMM(const graph::CsrMatrix* adj, Var x) {
  BGC_CHECK(adj != nullptr);
  Matrix out = adj->Multiply(node(x).value);
  Var result{static_cast<int>(nodes_.size())};
  return Emit(std::move(out), node(x).requires_grad,
              [adj, x, result](Tape& t) {
    t.Accumulate(x, adj->MultiplyTransposed(t.node(result).grad));
  }, x);
}

Var Tape::Softmax(Var a) {
  Matrix out = bgc::RowSoftmax(node(a).value);
  Var result{static_cast<int>(nodes_.size())};
  return Emit(std::move(out), node(a).requires_grad, [a, result](Tape& t) {
    const Matrix& g = t.node(result).grad;
    const Matrix& s = t.node(result).value;
    Matrix ga(g.rows(), g.cols());
    for (int i = 0; i < g.rows(); ++i) {
      const float* grow = g.RowPtr(i);
      const float* srow = s.RowPtr(i);
      float dot = 0.0f;
      for (int j = 0; j < g.cols(); ++j) dot += grow[j] * srow[j];
      float* garow = ga.RowPtr(i);
      for (int j = 0; j < g.cols(); ++j) {
        garow[j] = (grow[j] - dot) * srow[j];
      }
    }
    t.Accumulate(a, ga);
  }, a);
}

Var Tape::SoftmaxCrossEntropy(Var logits, const Matrix& targets,
                              const Matrix& row_weights) {
  const Matrix& lv = node(logits).value;
  BGC_CHECK_EQ(lv.rows(), targets.rows());
  BGC_CHECK_EQ(lv.cols(), targets.cols());
  Matrix probs = bgc::RowSoftmax(lv);
  double weight_sum = 0.0;
  const bool weighted = !row_weights.empty();
  if (weighted) {
    BGC_CHECK_EQ(row_weights.size(), lv.rows());
    for (int i = 0; i < row_weights.size(); ++i) {
      weight_sum += row_weights.data()[i];
    }
  } else {
    weight_sum = lv.rows();
  }
  BGC_CHECK_GT(weight_sum, 0.0);
  double loss = 0.0;
  for (int i = 0; i < lv.rows(); ++i) {
    const float* prow = probs.RowPtr(i);
    const float* trow = targets.RowPtr(i);
    double row_loss = 0.0;
    for (int j = 0; j < lv.cols(); ++j) {
      if (trow[j] != 0.0f) {
        row_loss -= trow[j] * std::log(std::max(prow[j], 1e-12f));
      }
    }
    const double w = weighted ? row_weights.data()[i] : 1.0;
    loss += w * row_loss;
  }
  Matrix out(1, 1);
  out(0, 0) = static_cast<float>(loss / weight_sum);
  Var result{static_cast<int>(nodes_.size())};
  return Emit(
      std::move(out), node(logits).requires_grad,
      [logits, probs = std::move(probs), targets, row_weights, weighted,
       weight_sum, result](Tape& t) {
        const float gscale = t.node(result).grad(0, 0);
        Matrix ga(probs.rows(), probs.cols());
        for (int i = 0; i < probs.rows(); ++i) {
          const double w = weighted ? row_weights.data()[i] : 1.0;
          const float c =
              static_cast<float>(gscale * w / weight_sum);
          const float* prow = probs.RowPtr(i);
          const float* trow = targets.RowPtr(i);
          float* garow = ga.RowPtr(i);
          for (int j = 0; j < probs.cols(); ++j) {
            garow[j] = c * (prow[j] - trow[j]);
          }
        }
        t.Accumulate(logits, ga);
      },
      logits);
}

Var Tape::Dropout(Var a, float p, Rng& rng, bool training) {
  if (!training || p <= 0.0f) {
    // Identity node keeps the graph structure uniform.
    Matrix out = node(a).value;
    Var result{static_cast<int>(nodes_.size())};
    return Emit(std::move(out), node(a).requires_grad, [a, result](Tape& t) {
      t.Accumulate(a, t.node(result).grad);
    }, a);
  }
  BGC_CHECK_LT(p, 1.0f);
  const Matrix& av = node(a).value;
  Matrix mask(av.rows(), av.cols());
  const float keep_scale = 1.0f / (1.0f - p);
  for (int i = 0; i < mask.size(); ++i) {
    mask.data()[i] = rng.Bernoulli(1.0 - p) ? keep_scale : 0.0f;
  }
  Matrix out = bgc::Hadamard(av, mask);
  Var result{static_cast<int>(nodes_.size())};
  return Emit(std::move(out), node(a).requires_grad,
              [a, mask = std::move(mask), result](Tape& t) {
    t.Accumulate(a, bgc::Hadamard(t.node(result).grad, mask));
  }, a);
}

Var Tape::Solve(Var a, Var b) {
  const Matrix& av = node(a).value;
  const Matrix& bv = node(b).value;
  Matrix x = SolveLinear(av, bv);
  const bool rg = node(a).requires_grad || node(b).requires_grad;
  Var result{static_cast<int>(nodes_.size())};
  return Emit(std::move(x), rg, [a, b, result](Tape& t) {
    const Matrix& g = t.node(result).grad;
    const Matrix& xv = t.node(result).value;
    // X = A^{-1} B  =>  gB = A^{-T} G,  gA = -gB X^T.
    Matrix gb = SolveLinearTransposed(t.node(a).value, g);
    if (t.node(a).requires_grad) {
      Matrix ga = bgc::MatMulTransB(gb, xv);
      ScaleInPlace(ga, -1.0f);
      t.Accumulate(a, ga);
    }
    t.Accumulate(b, gb);
  }, a, b);
}

void Tape::Backward(Var loss) {
  BGC_CHECK(!backward_done_);
  backward_done_ = true;
  Node& top = node(loss);
  BGC_CHECK_EQ(top.value.rows(), 1);
  BGC_CHECK_EQ(top.value.cols(), 1);
  BGC_CHECK(top.requires_grad);
  top.grad = Matrix::Full(1, 1, 1.0f);
  if (ActiveBackwardMode() == BackwardMode::kParallel &&
      ThreadPool::Global().num_threads() > 1) {
    BackwardParallel(loss);
  } else {
    BackwardSerial(loss);
  }
  // Materialize zero grads for requires-grad nodes the traversal never
  // reached (inputs disconnected from the loss). Doing it here — after the
  // traversal, so no backward closure ever runs on a synthetic zero — makes
  // grad() a pure read for every requires-grad node, which is what lets
  // multiple threads read grads concurrently.
  for (Node& n : nodes_) {
    if (n.requires_grad && n.grad.empty() && !n.value.empty()) {
      n.grad = Matrix(n.value.rows(), n.value.cols());
    }
  }
}

void Tape::BackwardSerial(Var loss) {
  for (int i = loss.id; i >= 0; --i) {
    Node& n = nodes_[i];
    if (!n.requires_grad || n.grad.empty() || !n.backward) continue;
    n.backward(*this);
  }
  BGC_GAUGE_SET("autograd.ready_width", 1.0);
}

void Tape::BackwardParallel(Var loss) {
  ParallelCtx ctx(loss.id + 1);
  std::vector<ParallelCtx::NodeState>& st = ctx.st;

  // ---- Plan (single-threaded): one descending pass mirrors the serial
  // walk. A node runs iff it receives gradient and has a closure; each
  // running op contributes one slot to every distinct requires-grad
  // parent. Because the scan descends, each parent's slots end up in
  // descending consumer order — serial accumulation order.
  st[loss.id].receives = true;
  int num_runs = 0;
  for (int i = loss.id; i >= 0; --i) {
    Node& nd = nodes_[i];
    if (!st[i].receives) continue;
    if (!nd.backward) continue;
    st[i].runs = true;
    ++num_runs;
    for (int pi = 0; pi < 2; ++pi) {
      const int p = nd.parents[pi];
      if (p < 0 || !nodes_[p].requires_grad) continue;
      // Same node in both inputs (e.g. Add(a, a)): one slot; the closure
      // appends both contributions to it in call order.
      if (pi == 1 && p == nd.parents[0]) continue;
      st[p].receives = true;
      st[p].slots.push_back({i, {}});
      st[p].pending.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (num_runs == 0) return;

  // Folds v's parked contributions into its grad in slot order (descending
  // consumer, call order within a consumer) — the serial float-addition
  // sequence. Returns whether any gradient actually arrived.
  auto fold = [&](int v) {
    Node& nd = nodes_[v];
    for (ParallelCtx::Slot& slot : st[v].slots) {
      for (Matrix& c : slot.contribs) {
        if (c.empty()) continue;
        if (nd.grad.empty()) {
          nd.grad = std::move(c);
        } else {
          AddScaledInPlace(nd.grad, c, 1.0f);
        }
      }
      slot.contribs.clear();
    }
    return !nd.grad.empty();
  };

  std::mutex mu;
  std::condition_variable cv;
  std::vector<int> ready;       // LIFO; pop order does not affect results
  int remaining = num_runs;     // running ops not yet finished or skipped
  size_t max_width = 0;

  pctx_ = &ctx;
  ready.push_back(loss.id);
  max_width = 1;

  auto worker = [&]() {
    std::unique_lock<std::mutex> lock(mu);
    for (;;) {
      while (ready.empty() && remaining > 0) cv.wait(lock);
      if (ready.empty()) return;  // remaining == 0: sweep drained
      const int op = ready.back();
      ready.pop_back();
      lock.unlock();

      t_current_op = op;
      nodes_[op].backward(*this);
      t_current_op = -1;

      // Complete `op` and cascade: decrement each counted parent; whoever
      // takes a pending count to zero folds that parent (it alone sees all
      // contributions — the acq_rel RMWs order the slot writes). A planned
      // runner whose folded grad is empty is "skipped": finished without
      // executing, exactly the serial `grad.empty()` skip.
      std::vector<int> newly_ready;
      std::vector<int> done{op};
      int finished = 0;
      while (!done.empty()) {
        const int j = done.back();
        done.pop_back();
        ++finished;
        const Node& nd = nodes_[j];
        for (int pi = 0; pi < 2; ++pi) {
          const int p = nd.parents[pi];
          if (p < 0 || !st[p].receives) continue;
          if (pi == 1 && p == nd.parents[0]) continue;
          if (st[p].pending.fetch_sub(1, std::memory_order_acq_rel) != 1) {
            continue;
          }
          const bool has_grad = fold(p);
          if (!st[p].runs) continue;  // leaf: gradient is the product
          if (has_grad) {
            newly_ready.push_back(p);
          } else {
            done.push_back(p);
          }
        }
      }

      lock.lock();
      remaining -= finished;
      for (int p : newly_ready) ready.push_back(p);
      if (ready.size() > max_width) max_width = ready.size();
      if (remaining == 0 || !newly_ready.empty()) cv.notify_all();
    }
  };

  const int workers =
      std::min(ThreadPool::Global().num_threads(), num_runs);
  ThreadPool::Global().Run(workers, [&worker](int) { worker(); });
  pctx_ = nullptr;

  BGC_CHECK_EQ(remaining, 0);
  BGC_GAUGE_SET("autograd.ready_width", static_cast<double>(max_width));
}

const Matrix& Tape::value(Var v) const { return node(v).value; }

const Matrix& Tape::grad(Var v) {
  Node& n = node(v);
  if (n.grad.empty()) {
    static const Matrix* empty = new Matrix();
    if (n.value.empty()) return *empty;
    // Lazily materialize a zero grad of the right shape. Only reachable
    // for non-requires-grad nodes once Backward() has run (it pre-sizes
    // the rest); the mutation is explicit in the non-const signature.
    n.grad = Matrix(n.value.rows(), n.value.cols());
  }
  return n.grad;
}

void Tape::Reset() {
  last_step_nodes_ = nodes_.size();
  nodes_.clear();  // keeps capacity
  nodes_.reserve(last_step_nodes_);
  backward_done_ = false;
  // Step boundary for the buffer arena: the node matrices just released
  // above are the cache for the next step; trim anything beyond this
  // step's peak footprint.
  core::BufferArena::Global().TrimToStepPeak();
}

}  // namespace bgc::ag
