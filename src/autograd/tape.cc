#include "src/autograd/tape.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/core/check.h"
#include "src/tensor/linalg.h"
#include "src/tensor/matrix_ops.h"

namespace bgc::ag {

Var Tape::Emit(Matrix value, bool requires_grad,
               std::function<void(Tape&)> backward) {
  Node n;
  n.value = std::move(value);
  n.requires_grad = requires_grad;
  n.backward = std::move(backward);
  nodes_.push_back(std::move(n));
  return Var{static_cast<int>(nodes_.size()) - 1};
}

Tape::Node& Tape::node(Var v) {
  BGC_CHECK_GE(v.id, 0);
  BGC_CHECK_LT(v.id, static_cast<int>(nodes_.size()));
  return nodes_[v.id];
}

const Tape::Node& Tape::node(Var v) const {
  BGC_CHECK_GE(v.id, 0);
  BGC_CHECK_LT(v.id, static_cast<int>(nodes_.size()));
  return nodes_[v.id];
}

void Tape::Accumulate(Var v, const Matrix& g) {
  Node& n = node(v);
  if (!n.requires_grad) return;
  if (n.grad.empty()) {
    n.grad = g;
  } else {
    AddScaledInPlace(n.grad, g, 1.0f);
  }
}

Var Tape::Input(Matrix value) {
  return Emit(std::move(value), /*requires_grad=*/true, nullptr);
}

Var Tape::Constant(Matrix value) {
  return Emit(std::move(value), /*requires_grad=*/false, nullptr);
}

Var Tape::Add(Var a, Var b) {
  Matrix out = bgc::Add(node(a).value, node(b).value);
  const bool rg = node(a).requires_grad || node(b).requires_grad;
  Var result{static_cast<int>(nodes_.size())};
  return Emit(std::move(out), rg, [a, b, result](Tape& t) {
    const Matrix& g = t.node(result).grad;
    t.Accumulate(a, g);
    t.Accumulate(b, g);
  });
}

Var Tape::Sub(Var a, Var b) {
  Matrix out = bgc::Sub(node(a).value, node(b).value);
  const bool rg = node(a).requires_grad || node(b).requires_grad;
  Var result{static_cast<int>(nodes_.size())};
  return Emit(std::move(out), rg, [a, b, result](Tape& t) {
    const Matrix& g = t.node(result).grad;
    t.Accumulate(a, g);
    t.Accumulate(b, bgc::Scale(g, -1.0f));
  });
}

Var Tape::Hadamard(Var a, Var b) {
  Matrix out = bgc::Hadamard(node(a).value, node(b).value);
  const bool rg = node(a).requires_grad || node(b).requires_grad;
  Var result{static_cast<int>(nodes_.size())};
  return Emit(std::move(out), rg, [a, b, result](Tape& t) {
    const Matrix& g = t.node(result).grad;
    t.Accumulate(a, bgc::Hadamard(g, t.node(b).value));
    t.Accumulate(b, bgc::Hadamard(g, t.node(a).value));
  });
}

Var Tape::ElemDiv(Var a, Var b) {
  const Matrix& av = node(a).value;
  const Matrix& bv = node(b).value;
  BGC_CHECK_EQ(av.rows(), bv.rows());
  BGC_CHECK_EQ(av.cols(), bv.cols());
  Matrix out(av.rows(), av.cols());
  for (int i = 0; i < out.size(); ++i) out.data()[i] = av.data()[i] / bv.data()[i];
  const bool rg = node(a).requires_grad || node(b).requires_grad;
  Var result{static_cast<int>(nodes_.size())};
  return Emit(std::move(out), rg, [a, b, result](Tape& t) {
    const Matrix& g = t.node(result).grad;
    const Matrix& bv2 = t.node(b).value;
    const Matrix& cv = t.node(result).value;
    Matrix ga(g.rows(), g.cols());
    Matrix gb(g.rows(), g.cols());
    for (int i = 0; i < g.size(); ++i) {
      ga.data()[i] = g.data()[i] / bv2.data()[i];
      gb.data()[i] = -g.data()[i] * cv.data()[i] / bv2.data()[i];
    }
    t.Accumulate(a, ga);
    t.Accumulate(b, gb);
  });
}

Var Tape::Scale(Var a, float s) {
  Matrix out = bgc::Scale(node(a).value, s);
  Var result{static_cast<int>(nodes_.size())};
  return Emit(std::move(out), node(a).requires_grad, [a, s, result](Tape& t) {
    t.Accumulate(a, bgc::Scale(t.node(result).grad, s));
  });
}

Var Tape::AddConst(Var a, float c) {
  Matrix out = node(a).value;
  for (int i = 0; i < out.size(); ++i) out.data()[i] += c;
  Var result{static_cast<int>(nodes_.size())};
  return Emit(std::move(out), node(a).requires_grad, [a, result](Tape& t) {
    t.Accumulate(a, t.node(result).grad);
  });
}

Var Tape::Relu(Var a) {
  Matrix out = bgc::Relu(node(a).value);
  Var result{static_cast<int>(nodes_.size())};
  return Emit(std::move(out), node(a).requires_grad, [a, result](Tape& t) {
    const Matrix& g = t.node(result).grad;
    const Matrix& y = t.node(result).value;
    Matrix ga(g.rows(), g.cols());
    for (int i = 0; i < g.size(); ++i) {
      ga.data()[i] = y.data()[i] > 0.0f ? g.data()[i] : 0.0f;
    }
    t.Accumulate(a, ga);
  });
}

Var Tape::Sigmoid(Var a) {
  Matrix out = bgc::Sigmoid(node(a).value);
  Var result{static_cast<int>(nodes_.size())};
  return Emit(std::move(out), node(a).requires_grad, [a, result](Tape& t) {
    const Matrix& g = t.node(result).grad;
    const Matrix& y = t.node(result).value;
    Matrix ga(g.rows(), g.cols());
    for (int i = 0; i < g.size(); ++i) {
      const float s = y.data()[i];
      ga.data()[i] = g.data()[i] * s * (1.0f - s);
    }
    t.Accumulate(a, ga);
  });
}

Var Tape::Tanh(Var a) {
  Matrix out = bgc::TanhMat(node(a).value);
  Var result{static_cast<int>(nodes_.size())};
  return Emit(std::move(out), node(a).requires_grad, [a, result](Tape& t) {
    const Matrix& g = t.node(result).grad;
    const Matrix& y = t.node(result).value;
    Matrix ga(g.rows(), g.cols());
    for (int i = 0; i < g.size(); ++i) {
      const float s = y.data()[i];
      ga.data()[i] = g.data()[i] * (1.0f - s * s);
    }
    t.Accumulate(a, ga);
  });
}

Var Tape::Exp(Var a) {
  Matrix out = node(a).value;
  for (int i = 0; i < out.size(); ++i) out.data()[i] = std::exp(out.data()[i]);
  Var result{static_cast<int>(nodes_.size())};
  return Emit(std::move(out), node(a).requires_grad, [a, result](Tape& t) {
    t.Accumulate(a, bgc::Hadamard(t.node(result).grad, t.node(result).value));
  });
}

Var Tape::Log(Var a, float eps) {
  const Matrix& av = node(a).value;
  Matrix out(av.rows(), av.cols());
  for (int i = 0; i < out.size(); ++i) {
    out.data()[i] = std::log(std::max(av.data()[i], eps));
  }
  Var result{static_cast<int>(nodes_.size())};
  return Emit(std::move(out), node(a).requires_grad,
              [a, eps, result](Tape& t) {
    const Matrix& g = t.node(result).grad;
    const Matrix& av2 = t.node(a).value;
    Matrix ga(g.rows(), g.cols());
    for (int i = 0; i < g.size(); ++i) {
      ga.data()[i] = g.data()[i] / std::max(av2.data()[i], eps);
    }
    t.Accumulate(a, ga);
  });
}

Var Tape::Sqrt(Var a, float eps) {
  const Matrix& av = node(a).value;
  Matrix out(av.rows(), av.cols());
  for (int i = 0; i < out.size(); ++i) {
    out.data()[i] = std::sqrt(std::max(av.data()[i], eps));
  }
  Var result{static_cast<int>(nodes_.size())};
  return Emit(std::move(out), node(a).requires_grad, [a, result](Tape& t) {
    const Matrix& g = t.node(result).grad;
    const Matrix& y = t.node(result).value;
    Matrix ga(g.rows(), g.cols());
    for (int i = 0; i < g.size(); ++i) {
      ga.data()[i] = 0.5f * g.data()[i] / std::max(y.data()[i], 1e-12f);
    }
    t.Accumulate(a, ga);
  });
}

Var Tape::Square(Var a) {
  Matrix out = bgc::Hadamard(node(a).value, node(a).value);
  Var result{static_cast<int>(nodes_.size())};
  return Emit(std::move(out), node(a).requires_grad, [a, result](Tape& t) {
    Matrix ga = bgc::Hadamard(t.node(result).grad, t.node(a).value);
    ScaleInPlace(ga, 2.0f);
    t.Accumulate(a, ga);
  });
}

Var Tape::Acos(Var a, float eps) {
  const Matrix& av = node(a).value;
  Matrix out(av.rows(), av.cols());
  for (int i = 0; i < out.size(); ++i) {
    const float t = std::min(1.0f - eps, std::max(-1.0f + eps, av.data()[i]));
    out.data()[i] = std::acos(t);
  }
  Var result{static_cast<int>(nodes_.size())};
  return Emit(std::move(out), node(a).requires_grad,
              [a, eps, result](Tape& t) {
    const Matrix& g = t.node(result).grad;
    const Matrix& av2 = t.node(a).value;
    Matrix ga(g.rows(), g.cols());
    for (int i = 0; i < g.size(); ++i) {
      const float x =
          std::min(1.0f - eps, std::max(-1.0f + eps, av2.data()[i]));
      ga.data()[i] = -g.data()[i] / std::sqrt(1.0f - x * x);
    }
    t.Accumulate(a, ga);
  });
}

Var Tape::Clamp(Var a, float lo, float hi) {
  const Matrix& av = node(a).value;
  Matrix out(av.rows(), av.cols());
  for (int i = 0; i < out.size(); ++i) {
    out.data()[i] = std::min(hi, std::max(lo, av.data()[i]));
  }
  Var result{static_cast<int>(nodes_.size())};
  return Emit(std::move(out), node(a).requires_grad,
              [a, lo, hi, result](Tape& t) {
    const Matrix& g = t.node(result).grad;
    const Matrix& av2 = t.node(a).value;
    Matrix ga(g.rows(), g.cols());
    for (int i = 0; i < g.size(); ++i) {
      const float x = av2.data()[i];
      ga.data()[i] = (x > lo && x < hi) ? g.data()[i] : 0.0f;
    }
    t.Accumulate(a, ga);
  });
}

Var Tape::BinarizeSte(Var a, float threshold) {
  const Matrix& av = node(a).value;
  Matrix out(av.rows(), av.cols());
  for (int i = 0; i < out.size(); ++i) {
    out.data()[i] = av.data()[i] > threshold ? 1.0f : 0.0f;
  }
  Var result{static_cast<int>(nodes_.size())};
  return Emit(std::move(out), node(a).requires_grad, [a, result](Tape& t) {
    t.Accumulate(a, t.node(result).grad);  // straight-through
  });
}

Var Tape::Reshape(Var a, int rows, int cols) {
  const Matrix& av = node(a).value;
  BGC_CHECK_EQ(av.size(), rows * cols);
  Matrix out(rows, cols,
             std::vector<float>(av.data(), av.data() + av.size()));
  const int orig_rows = av.rows(), orig_cols = av.cols();
  Var result{static_cast<int>(nodes_.size())};
  return Emit(std::move(out), node(a).requires_grad,
              [a, orig_rows, orig_cols, result](Tape& t) {
    const Matrix& g = t.node(result).grad;
    Matrix ga(orig_rows, orig_cols,
              std::vector<float>(g.data(), g.data() + g.size()));
    t.Accumulate(a, ga);
  });
}

Var Tape::Transpose(Var a) {
  Matrix out = bgc::Transpose(node(a).value);
  Var result{static_cast<int>(nodes_.size())};
  return Emit(std::move(out), node(a).requires_grad, [a, result](Tape& t) {
    t.Accumulate(a, bgc::Transpose(t.node(result).grad));
  });
}

Var Tape::ConcatRows(Var a, Var b) {
  Matrix out = bgc::ConcatRows(node(a).value, node(b).value);
  const bool rg = node(a).requires_grad || node(b).requires_grad;
  const int split = node(a).value.rows();
  Var result{static_cast<int>(nodes_.size())};
  return Emit(std::move(out), rg, [a, b, split, result](Tape& t) {
    const Matrix& g = t.node(result).grad;
    Matrix ga(split, g.cols());
    Matrix gb(g.rows() - split, g.cols());
    for (int i = 0; i < split; ++i) ga.SetRow(i, g.RowPtr(i));
    for (int i = split; i < g.rows(); ++i) gb.SetRow(i - split, g.RowPtr(i));
    t.Accumulate(a, ga);
    t.Accumulate(b, gb);
  });
}

Var Tape::ConcatCols(Var a, Var b) {
  Matrix out = bgc::ConcatCols(node(a).value, node(b).value);
  const bool rg = node(a).requires_grad || node(b).requires_grad;
  const int split = node(a).value.cols();
  Var result{static_cast<int>(nodes_.size())};
  return Emit(std::move(out), rg, [a, b, split, result](Tape& t) {
    const Matrix& g = t.node(result).grad;
    Matrix ga(g.rows(), split);
    Matrix gb(g.rows(), g.cols() - split);
    for (int i = 0; i < g.rows(); ++i) {
      const float* row = g.RowPtr(i);
      for (int j = 0; j < split; ++j) ga(i, j) = row[j];
      for (int j = split; j < g.cols(); ++j) gb(i, j - split) = row[j];
    }
    t.Accumulate(a, ga);
    t.Accumulate(b, gb);
  });
}

Var Tape::GatherRows(Var a, std::vector<int> rows) {
  Matrix out = bgc::GatherRows(node(a).value, rows);
  const int parent_rows = node(a).value.rows();
  Var result{static_cast<int>(nodes_.size())};
  return Emit(std::move(out), node(a).requires_grad,
              [a, rows = std::move(rows), parent_rows, result](Tape& t) {
    const Matrix& g = t.node(result).grad;
    Matrix ga(parent_rows, g.cols());
    ScatterAddRows(g, rows, ga);
    t.Accumulate(a, ga);
  });
}

Var Tape::RowSumOp(Var a) {
  Matrix out = bgc::RowSum(node(a).value);
  const int cols = node(a).value.cols();
  Var result{static_cast<int>(nodes_.size())};
  return Emit(std::move(out), node(a).requires_grad,
              [a, cols, result](Tape& t) {
    const Matrix& g = t.node(result).grad;
    Matrix ga(g.rows(), cols);
    for (int i = 0; i < g.rows(); ++i) {
      float* row = ga.RowPtr(i);
      const float v = g(i, 0);
      for (int j = 0; j < cols; ++j) row[j] = v;
    }
    t.Accumulate(a, ga);
  });
}

Var Tape::ColSumOp(Var a) {
  Matrix out = bgc::ColSum(node(a).value);
  const int rows = node(a).value.rows();
  Var result{static_cast<int>(nodes_.size())};
  return Emit(std::move(out), node(a).requires_grad,
              [a, rows, result](Tape& t) {
    const Matrix& g = t.node(result).grad;
    Matrix ga(rows, g.cols());
    for (int i = 0; i < rows; ++i) ga.SetRow(i, g.data());
    t.Accumulate(a, ga);
  });
}

Var Tape::SumAll(Var a) {
  Matrix out(1, 1);
  out(0, 0) = bgc::Sum(node(a).value);
  const int rows = node(a).value.rows();
  const int cols = node(a).value.cols();
  Var result{static_cast<int>(nodes_.size())};
  return Emit(std::move(out), node(a).requires_grad,
              [a, rows, cols, result](Tape& t) {
    t.Accumulate(a, Matrix::Full(rows, cols, t.node(result).grad(0, 0)));
  });
}

Var Tape::MeanAll(Var a) {
  const int n = node(a).value.size();
  BGC_CHECK_GT(n, 0);
  Var s = SumAll(a);
  return Scale(s, 1.0f / static_cast<float>(n));
}

Var Tape::MulColVec(Var a, Var v) {
  const Matrix& av = node(a).value;
  const Matrix& vv = node(v).value;
  BGC_CHECK_EQ(vv.cols(), 1);
  BGC_CHECK_EQ(vv.rows(), av.rows());
  Matrix out = av;
  for (int i = 0; i < out.rows(); ++i) {
    float* row = out.RowPtr(i);
    const float s = vv(i, 0);
    for (int j = 0; j < out.cols(); ++j) row[j] *= s;
  }
  const bool rg = node(a).requires_grad || node(v).requires_grad;
  Var result{static_cast<int>(nodes_.size())};
  return Emit(std::move(out), rg, [a, v, result](Tape& t) {
    const Matrix& g = t.node(result).grad;
    const Matrix& av2 = t.node(a).value;
    const Matrix& vv2 = t.node(v).value;
    Matrix ga(g.rows(), g.cols());
    Matrix gv(g.rows(), 1);
    for (int i = 0; i < g.rows(); ++i) {
      const float s = vv2(i, 0);
      const float* grow = g.RowPtr(i);
      const float* arow = av2.RowPtr(i);
      float* garow = ga.RowPtr(i);
      float acc = 0.0f;
      for (int j = 0; j < g.cols(); ++j) {
        garow[j] = grow[j] * s;
        acc += grow[j] * arow[j];
      }
      gv(i, 0) = acc;
    }
    t.Accumulate(a, ga);
    t.Accumulate(v, gv);
  });
}

Var Tape::MulRowVec(Var a, Var v) {
  const Matrix& av = node(a).value;
  const Matrix& vv = node(v).value;
  BGC_CHECK_EQ(vv.rows(), 1);
  BGC_CHECK_EQ(vv.cols(), av.cols());
  Matrix out = av;
  for (int i = 0; i < out.rows(); ++i) {
    float* row = out.RowPtr(i);
    for (int j = 0; j < out.cols(); ++j) row[j] *= vv.data()[j];
  }
  const bool rg = node(a).requires_grad || node(v).requires_grad;
  Var result{static_cast<int>(nodes_.size())};
  return Emit(std::move(out), rg, [a, v, result](Tape& t) {
    const Matrix& g = t.node(result).grad;
    const Matrix& av2 = t.node(a).value;
    const Matrix& vv2 = t.node(v).value;
    Matrix ga(g.rows(), g.cols());
    Matrix gv(1, g.cols());
    for (int i = 0; i < g.rows(); ++i) {
      const float* grow = g.RowPtr(i);
      const float* arow = av2.RowPtr(i);
      float* garow = ga.RowPtr(i);
      for (int j = 0; j < g.cols(); ++j) {
        garow[j] = grow[j] * vv2.data()[j];
        gv.data()[j] += grow[j] * arow[j];
      }
    }
    t.Accumulate(a, ga);
    t.Accumulate(v, gv);
  });
}

Var Tape::AddRowVec(Var a, Var bias) {
  Matrix out = bgc::AddRowBroadcast(node(a).value, node(bias).value);
  const bool rg = node(a).requires_grad || node(bias).requires_grad;
  Var result{static_cast<int>(nodes_.size())};
  return Emit(std::move(out), rg, [a, bias, result](Tape& t) {
    const Matrix& g = t.node(result).grad;
    t.Accumulate(a, g);
    t.Accumulate(bias, bgc::ColSum(g));
  });
}

Var Tape::MatMul(Var a, Var b) {
  Matrix out = bgc::MatMul(node(a).value, node(b).value);
  const bool rg = node(a).requires_grad || node(b).requires_grad;
  Var result{static_cast<int>(nodes_.size())};
  return Emit(std::move(out), rg, [a, b, result](Tape& t) {
    const Matrix& g = t.node(result).grad;
    if (t.node(a).requires_grad) {
      t.Accumulate(a, bgc::MatMulTransB(g, t.node(b).value));
    }
    if (t.node(b).requires_grad) {
      t.Accumulate(b, bgc::MatMulTransA(t.node(a).value, g));
    }
  });
}

Var Tape::SpMM(const graph::CsrMatrix* adj, Var x) {
  BGC_CHECK(adj != nullptr);
  Matrix out = adj->Multiply(node(x).value);
  Var result{static_cast<int>(nodes_.size())};
  return Emit(std::move(out), node(x).requires_grad,
              [adj, x, result](Tape& t) {
    t.Accumulate(x, adj->MultiplyTransposed(t.node(result).grad));
  });
}

Var Tape::Softmax(Var a) {
  Matrix out = bgc::RowSoftmax(node(a).value);
  Var result{static_cast<int>(nodes_.size())};
  return Emit(std::move(out), node(a).requires_grad, [a, result](Tape& t) {
    const Matrix& g = t.node(result).grad;
    const Matrix& s = t.node(result).value;
    Matrix ga(g.rows(), g.cols());
    for (int i = 0; i < g.rows(); ++i) {
      const float* grow = g.RowPtr(i);
      const float* srow = s.RowPtr(i);
      float dot = 0.0f;
      for (int j = 0; j < g.cols(); ++j) dot += grow[j] * srow[j];
      float* garow = ga.RowPtr(i);
      for (int j = 0; j < g.cols(); ++j) {
        garow[j] = (grow[j] - dot) * srow[j];
      }
    }
    t.Accumulate(a, ga);
  });
}

Var Tape::SoftmaxCrossEntropy(Var logits, const Matrix& targets,
                              const Matrix& row_weights) {
  const Matrix& lv = node(logits).value;
  BGC_CHECK_EQ(lv.rows(), targets.rows());
  BGC_CHECK_EQ(lv.cols(), targets.cols());
  Matrix probs = bgc::RowSoftmax(lv);
  double weight_sum = 0.0;
  const bool weighted = !row_weights.empty();
  if (weighted) {
    BGC_CHECK_EQ(row_weights.size(), lv.rows());
    for (int i = 0; i < row_weights.size(); ++i) {
      weight_sum += row_weights.data()[i];
    }
  } else {
    weight_sum = lv.rows();
  }
  BGC_CHECK_GT(weight_sum, 0.0);
  double loss = 0.0;
  for (int i = 0; i < lv.rows(); ++i) {
    const float* prow = probs.RowPtr(i);
    const float* trow = targets.RowPtr(i);
    double row_loss = 0.0;
    for (int j = 0; j < lv.cols(); ++j) {
      if (trow[j] != 0.0f) {
        row_loss -= trow[j] * std::log(std::max(prow[j], 1e-12f));
      }
    }
    const double w = weighted ? row_weights.data()[i] : 1.0;
    loss += w * row_loss;
  }
  Matrix out(1, 1);
  out(0, 0) = static_cast<float>(loss / weight_sum);
  Var result{static_cast<int>(nodes_.size())};
  return Emit(
      std::move(out), node(logits).requires_grad,
      [logits, probs = std::move(probs), targets, row_weights, weighted,
       weight_sum, result](Tape& t) {
        const float gscale = t.node(result).grad(0, 0);
        Matrix ga(probs.rows(), probs.cols());
        for (int i = 0; i < probs.rows(); ++i) {
          const double w = weighted ? row_weights.data()[i] : 1.0;
          const float c =
              static_cast<float>(gscale * w / weight_sum);
          const float* prow = probs.RowPtr(i);
          const float* trow = targets.RowPtr(i);
          float* garow = ga.RowPtr(i);
          for (int j = 0; j < probs.cols(); ++j) {
            garow[j] = c * (prow[j] - trow[j]);
          }
        }
        t.Accumulate(logits, ga);
      });
}

Var Tape::Dropout(Var a, float p, Rng& rng, bool training) {
  if (!training || p <= 0.0f) {
    // Identity node keeps the graph structure uniform.
    Matrix out = node(a).value;
    Var result{static_cast<int>(nodes_.size())};
    return Emit(std::move(out), node(a).requires_grad, [a, result](Tape& t) {
      t.Accumulate(a, t.node(result).grad);
    });
  }
  BGC_CHECK_LT(p, 1.0f);
  const Matrix& av = node(a).value;
  Matrix mask(av.rows(), av.cols());
  const float keep_scale = 1.0f / (1.0f - p);
  for (int i = 0; i < mask.size(); ++i) {
    mask.data()[i] = rng.Bernoulli(1.0 - p) ? keep_scale : 0.0f;
  }
  Matrix out = bgc::Hadamard(av, mask);
  Var result{static_cast<int>(nodes_.size())};
  return Emit(std::move(out), node(a).requires_grad,
              [a, mask = std::move(mask), result](Tape& t) {
    t.Accumulate(a, bgc::Hadamard(t.node(result).grad, mask));
  });
}

Var Tape::Solve(Var a, Var b) {
  const Matrix& av = node(a).value;
  const Matrix& bv = node(b).value;
  Matrix x = SolveLinear(av, bv);
  const bool rg = node(a).requires_grad || node(b).requires_grad;
  Var result{static_cast<int>(nodes_.size())};
  return Emit(std::move(x), rg, [a, b, result](Tape& t) {
    const Matrix& g = t.node(result).grad;
    const Matrix& xv = t.node(result).value;
    // X = A^{-1} B  =>  gB = A^{-T} G,  gA = -gB X^T.
    Matrix gb = SolveLinearTransposed(t.node(a).value, g);
    if (t.node(a).requires_grad) {
      Matrix ga = bgc::MatMulTransB(gb, xv);
      ScaleInPlace(ga, -1.0f);
      t.Accumulate(a, ga);
    }
    t.Accumulate(b, gb);
  });
}

void Tape::Backward(Var loss) {
  BGC_CHECK(!backward_done_);
  backward_done_ = true;
  Node& top = node(loss);
  BGC_CHECK_EQ(top.value.rows(), 1);
  BGC_CHECK_EQ(top.value.cols(), 1);
  BGC_CHECK(top.requires_grad);
  top.grad = Matrix::Full(1, 1, 1.0f);
  for (int i = loss.id; i >= 0; --i) {
    Node& n = nodes_[i];
    if (!n.requires_grad || n.grad.empty() || !n.backward) continue;
    n.backward(*this);
  }
  // Materialize zero grads for requires-grad nodes the traversal never
  // reached (inputs disconnected from the loss). Doing it here — after the
  // traversal, so no backward closure ever runs on a synthetic zero — makes
  // grad() a pure read for every requires-grad node, which is what lets
  // multiple threads read grads concurrently.
  for (Node& n : nodes_) {
    if (n.requires_grad && n.grad.empty() && !n.value.empty()) {
      n.grad = Matrix(n.value.rows(), n.value.cols());
    }
  }
}

const Matrix& Tape::value(Var v) const { return node(v).value; }

const Matrix& Tape::grad(Var v) {
  Node& n = node(v);
  if (n.grad.empty()) {
    static const Matrix* empty = new Matrix();
    if (n.value.empty()) return *empty;
    // Lazily materialize a zero grad of the right shape. Only reachable
    // for non-requires-grad nodes once Backward() has run (it pre-sizes
    // the rest); the mutation is explicit in the non-const signature.
    n.grad = Matrix(n.value.rows(), n.value.cols());
  }
  return n.grad;
}

void Tape::Reset() {
  nodes_.clear();
  backward_done_ = false;
}

}  // namespace bgc::ag
