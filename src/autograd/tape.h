#ifndef BGC_AUTOGRAD_TAPE_H_
#define BGC_AUTOGRAD_TAPE_H_

#include <array>
#include <cstddef>
#include <functional>
#include <vector>

#include "src/core/rng.h"
#include "src/graph/csr.h"
#include "src/tensor/matrix.h"

namespace bgc::ag {

class Tape;

/// Opaque handle to a tape node. Cheap to copy; only valid for the tape
/// that produced it and until that tape is Reset().
struct Var {
  int id = -1;
  bool valid() const { return id >= 0; }
};

/// How Backward() executes the reverse sweep. The process-wide default
/// comes from the BGC_AUTOGRAD environment variable: unset/"parallel"
/// selects the dependency-counted parallel engine, "serial" the plain
/// reverse-creation-order walk (the escape hatch), anything else aborts
/// with exit(2). Both modes are bit-identical for every thread count; see
/// DESIGN.md §11 for the determinism contract.
enum class BackwardMode { kSerial, kParallel };

/// Tape-based reverse-mode automatic differentiation over dense matrices.
///
/// Every forward op records a node whose backward closure scatters the
/// output gradient into its parents. Backward() traverses nodes in reverse
/// creation order (creation order is already topological). The op set is
/// exactly what the paper's pipeline needs: GNN forward passes, the
/// analytic SGC gradient expression used for GCond's gradient matching,
/// the pairwise-MLP adjacency synthesis, straight-through binarization for
/// discrete trigger structure, and the arccos-kernel / ridge-solve chain
/// of GC-SNTK.
///
/// Usage pattern per training step: build the graph with ops, call
/// Backward(loss), read grads, then Reset() before the next step.
class Tape {
 public:
  Tape() = default;
  Tape(const Tape&) = delete;
  Tape& operator=(const Tape&) = delete;

  /// Leaf with gradient tracking (model parameters, synthetic features).
  Var Input(Matrix value);

  /// Leaf without gradient tracking (data, targets, masks).
  Var Constant(Matrix value);

  // ----- binary element-wise (shapes must match) -----
  Var Add(Var a, Var b);
  Var Sub(Var a, Var b);
  Var Hadamard(Var a, Var b);
  /// Element-wise a / b. b must be bounded away from 0 by the caller.
  Var ElemDiv(Var a, Var b);

  // ----- unary element-wise -----
  Var Scale(Var a, float s);
  Var AddConst(Var a, float c);
  Var Relu(Var a);
  Var Sigmoid(Var a);
  Var Tanh(Var a);
  Var Exp(Var a);
  /// log(max(x, eps)) for numerical safety.
  Var Log(Var a, float eps = 1e-12f);
  /// sqrt(max(x, eps)).
  Var Sqrt(Var a, float eps = 0.0f);
  Var Square(Var a);
  /// arccos(clamp(x, -1+eps, 1-eps)); the clamp keeps the derivative finite
  /// at the NTK kernel's diagonal.
  Var Acos(Var a, float eps = 1e-6f);
  /// min(max(x, lo), hi) with the true (zero) gradient outside [lo, hi] —
  /// unlike the eps-guards in Sqrt/Log/Acos, which keep their analytic
  /// gradients in the saturated region.
  Var Clamp(Var a, float lo, float hi);
  /// Forward: 1[x > threshold]; backward: identity (straight-through).
  Var BinarizeSte(Var a, float threshold = 0.5f);

  // ----- shape / gather -----
  /// Reinterprets the (row-major) data as rows×cols; size must match.
  Var Reshape(Var a, int rows, int cols);
  Var Transpose(Var a);
  Var ConcatRows(Var a, Var b);
  Var ConcatCols(Var a, Var b);
  Var GatherRows(Var a, std::vector<int> rows);
  Var RowSumOp(Var a);   // n×m -> n×1
  Var ColSumOp(Var a);   // n×m -> 1×m
  Var SumAll(Var a);     // n×m -> 1×1
  /// Mean over all entries -> 1×1.
  Var MeanAll(Var a);

  // ----- broadcasts -----
  /// Scales row i of a by v(i, 0). v is n×1.
  Var MulColVec(Var a, Var v);
  /// Scales column j of a by v(0, j). v is 1×m.
  Var MulRowVec(Var a, Var v);
  /// Adds the 1×m row vector to every row (bias add).
  Var AddRowVec(Var a, Var bias);

  // ----- matmul family -----
  Var MatMul(Var a, Var b);
  /// Â x with a constant sparse operator. `adj` must outlive the tape pass.
  Var SpMM(const graph::CsrMatrix* adj, Var x);

  // ----- nn -----
  /// Row-wise softmax with full softmax backward.
  Var Softmax(Var a);
  /// Mean softmax cross-entropy against one-hot `targets` with optional
  /// per-row weights (1×n or empty). Returns a 1×1 scalar.
  Var SoftmaxCrossEntropy(Var logits, const Matrix& targets,
                          const Matrix& row_weights = Matrix());
  /// Inverted dropout. Identity when `training` is false or p == 0.
  Var Dropout(Var a, float p, Rng& rng, bool training);

  // ----- linalg -----
  /// X with A X = B; A square (small). Gradients flow to both A and B.
  Var Solve(Var a, Var b);

  /// Runs backward from `loss` (must be 1×1). Seeds d(loss)/d(loss) = 1.
  /// May be called once per constructed graph (i.e. once between Resets).
  ///
  /// Under BackwardMode::kParallel the sweep first plans a reverse
  /// dependency count per node (how many gradient-receiving consumers it
  /// has), then executes ready nodes — pending count zero — on the global
  /// ThreadPool via a ready queue, so independent branches (per-class
  /// losses, per-layer weight/bias grads) run concurrently. Gradient
  /// accumulation into a shared parent stays bit-identical to serial:
  /// contributions land in per-consumer slots and are folded in descending
  /// consumer order, exactly the float-addition order of the serial walk.
  void Backward(Var loss);

  /// The mode Backward() will use: the BGC_AUTOGRAD default unless a test
  /// override is active.
  static BackwardMode ActiveBackwardMode();

  /// Overrides the BGC_AUTOGRAD-derived mode for this process; returns the
  /// previous mode. Tests and benches only — not thread-safe against
  /// concurrent Backward() calls.
  static BackwardMode SetBackwardModeForTesting(BackwardMode mode);

  const Matrix& value(Var v) const;
  /// Gradient of the last Backward() w.r.t. node v. Zero matrix if the node
  /// did not receive gradient. Backward() pre-materializes zero grads for
  /// every requires-grad node, so after it returns, reads of those nodes
  /// are pure and safe from multiple threads concurrently. Reading a
  /// non-requires-grad node's grad lazily materializes its zero matrix —
  /// the accessor is deliberately non-const (it used to hide this mutation
  /// behind a const_cast, a latent data race for concurrent readers).
  const Matrix& grad(Var v);

  /// Drops all nodes; handles become invalid. Keeps the node vector's
  /// capacity and pre-reserves the previous step's node count, so steady
  /// training steps stop reallocating the tape; also gives the buffer
  /// arena its step boundary (BufferArena::TrimToStepPeak).
  void Reset();

  int num_nodes() const { return static_cast<int>(nodes_.size()); }

 private:
  struct Node {
    Matrix value;
    Matrix grad;
    bool requires_grad = false;
    // Producing op's inputs, by node id (-1 = none). Drives the parallel
    // sweep's dependency counting; ops have at most two tape parents.
    std::array<int, 2> parents{{-1, -1}};
    // Scatters this node's grad into its parents' grads.
    std::function<void(Tape&)> backward;
  };

  // Per-Backward planning/runtime state for the parallel engine; lives on
  // BackwardParallel's stack, reached from Accumulate via pctx_.
  struct ParallelCtx;

  Var Emit(Matrix value, bool requires_grad,
           std::function<void(Tape&)> backward, Var p0 = Var{},
           Var p1 = Var{});
  Node& node(Var v);
  const Node& node(Var v) const;
  /// Accumulates g into v's grad buffer (allocating on first touch). While
  /// a parallel sweep is running, routes g into the executing consumer's
  /// contribution slot instead (see DESIGN.md §11).
  void Accumulate(Var v, const Matrix& g);

  void BackwardSerial(Var loss);
  void BackwardParallel(Var loss);

  std::vector<Node> nodes_;
  bool backward_done_ = false;
  size_t last_step_nodes_ = 0;
  ParallelCtx* pctx_ = nullptr;
};

}  // namespace bgc::ag

#endif  // BGC_AUTOGRAD_TAPE_H_
