// Tape replay micro-bench: forward build + Backward() wall-clock and
// allocation counts for a GCond-inner-loop-shaped graph (the per-class
// gradient-matching fan-in of src/condense/gradient_matching.cc), swept
// over BGC_AUTOGRAD=serial|parallel and thread counts.
//
//   --jobs N    highest thread count in the sweep (default: ThreadPool::
//               DefaultNumThreads(), i.e. BGC_NUM_THREADS or hardware).
//               The sweep runs parallel backward at 1, 2, 4, ... up to N.
//   --steps N   tape rebuild+backward steps per measurement (default 30).
//   --reps N    best-of repetitions per row (default 3).
//   --paper     full-size configuration (more classes, bigger matrices).
//   --json P    write rows + the speedup gate as JSON to P and exit
//               non-zero if the gate fails. tools/ci.sh runs this mode;
//               bench/BENCH_tape.json is the committed snapshot.
//
// The gate requires parallel Backward() at the highest swept thread count
// to beat serial Backward() wall-clock; it is auto-skipped (with a logged
// notice) on single-core machines where there is nothing to win.
//
// Allocation counts come from the buffer arena's own counters: a malloc is
// an arena miss (or a bypass when BGC_ARENA=off), so `mallocs_per_step`
// directly shows the steady-state reuse the arena buys — near zero with
// the arena on, hundreds per step with it off.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/autograd/tape.h"
#include "src/core/arena.h"
#include "src/core/parse.h"
#include "src/core/rng.h"
#include "src/core/thread_pool.h"
#include "src/tensor/matrix.h"

namespace {

using namespace bgc;  // NOLINT

// ---------------------------------------------------------------------
// Workload: one gradient-matching inner step's tape, shaped like
// GradientMatchingCondenser::Epoch (learned adjacency + SGC propagation +
// one independent matching branch per class).
// ---------------------------------------------------------------------

struct Fixture {
  int n_syn = 0;
  int dim = 0;
  int num_classes = 0;
  int rank = 0;
  int sgc_k = 0;
  Matrix x;                         // n_syn × dim synthetic features
  Matrix u;                         // dim × rank adjacency factor
  Matrix bias;                      // 1 × 1 adjacency bias
  Matrix w;                         // dim × classes surrogate weights
  Matrix diag_mask;                 // n_syn × n_syn, zero diagonal
  Matrix identity;                  // n_syn × n_syn
  Matrix ones_col;                  // n_syn × 1
  std::vector<Matrix> real_grads;   // per class, dim × classes
  std::vector<Matrix> onehots;      // per class, rows_c × classes
  std::vector<std::vector<int>> class_rows;
};

Fixture MakeFixture(bool paper) {
  Fixture f;
  f.n_syn = paper ? 140 : 80;
  f.dim = paper ? 128 : 64;
  f.num_classes = paper ? 10 : 8;
  f.rank = paper ? 32 : 16;
  f.sgc_k = 2;
  Rng rng(17);
  f.x = Matrix::RandomNormal(f.n_syn, f.dim, rng);
  f.u = Matrix::RandomNormal(f.dim, f.rank, rng);
  f.bias = Matrix(1, 1, -2.0f);
  f.w = Matrix::RandomNormal(f.dim, f.num_classes, rng);
  f.diag_mask = Matrix(f.n_syn, f.n_syn, 1.0f);
  for (int i = 0; i < f.n_syn; ++i) f.diag_mask(i, i) = 0.0f;
  f.identity = Matrix::Identity(f.n_syn);
  f.ones_col = Matrix(f.n_syn, 1, 1.0f);
  const int per_class = f.n_syn / f.num_classes;
  for (int c = 0; c < f.num_classes; ++c) {
    f.real_grads.push_back(
        Matrix::RandomNormal(f.dim, f.num_classes, rng));
    std::vector<int> rows;
    for (int i = c * per_class; i < (c + 1) * per_class; ++i) {
      rows.push_back(i);
    }
    Matrix onehot(static_cast<int>(rows.size()), f.num_classes);
    for (int i = 0; i < static_cast<int>(rows.size()); ++i) {
      onehot(i, c) = 1.0f;
    }
    f.onehots.push_back(std::move(onehot));
    f.class_rows.push_back(std::move(rows));
  }
  return f;
}

/// Builds one inner step's graph on `t` and returns the matching loss.
ag::Var BuildStep(ag::Tape& t, const Fixture& f) {
  ag::Var x = t.Input(f.x);
  ag::Var u = t.Input(f.u);
  ag::Var bias = t.Input(f.bias);

  // Learned adjacency Â' (same chain as NormalizedLearnedAdjacency).
  ag::Var h = t.Tanh(t.MatMul(x, u));
  ag::Var raw = t.Scale(t.MatMul(h, t.Transpose(h)),
                        1.0f / std::sqrt(static_cast<float>(f.rank)));
  ag::Var bias_col = t.MatMul(t.Constant(f.ones_col), bias);
  ag::Var bias_full =
      t.MatMul(bias_col, t.Constant(Matrix(1, f.n_syn, 1.0f)));
  ag::Var a = t.Sigmoid(t.Add(raw, bias_full));
  a = t.Hadamard(a, t.BinarizeSte(a, 0.5f));
  a = t.Hadamard(a, t.Constant(f.diag_mask));
  ag::Var hat = t.Add(a, t.Constant(f.identity));
  ag::Var deg = t.RowSumOp(hat);
  ag::Var inv_sqrt = t.ElemDiv(t.Constant(f.ones_col), t.Sqrt(deg, 1e-8f));
  ag::Var op = t.MulRowVec(t.MulColVec(hat, inv_sqrt),
                           t.Transpose(inv_sqrt));

  ag::Var z = x;
  for (int k = 0; k < f.sgc_k; ++k) z = t.MatMul(op, z);

  // Independent per-class matching branches — the fan-in the parallel
  // backward engine exploits.
  ag::Var w_const = t.Constant(f.w);
  ag::Var loss{};
  for (int c = 0; c < f.num_classes; ++c) {
    ag::Var zc = t.GatherRows(z, f.class_rows[c]);
    ag::Var probs = t.Softmax(t.MatMul(zc, w_const));
    ag::Var diff = t.Sub(probs, t.Constant(f.onehots[c]));
    ag::Var g = t.Scale(
        t.MatMul(t.Transpose(zc), diff),
        1.0f / static_cast<float>(f.class_rows[c].size()));
    ag::Var term = t.SumAll(t.Square(t.Sub(g, t.Constant(f.real_grads[c]))));
    loss = c == 0 ? term : t.Add(loss, term);
  }
  return loss;
}

// ---------------------------------------------------------------------
// Measurement.
// ---------------------------------------------------------------------

struct Row {
  std::string mode;        // "serial" | "parallel"
  int jobs = 1;
  std::string arena;       // "on" | "off"
  double step_seconds = 0;     // forward build + backward, per step
  double forward_seconds = 0;  // tape build (incl. forward kernels)
  double backward_seconds = 0;
  double mallocs_per_step = 0;  // arena misses + bypasses per step
  double arena_hit_rate = 0;    // hits / (hits + misses), measured window
};

/// Restores the backward mode, thread count, and arena enablement on exit.
class ScopedEngineConfig {
 public:
  ScopedEngineConfig(ag::BackwardMode mode, int jobs, bool arena_on)
      : prev_mode_(ag::Tape::SetBackwardModeForTesting(mode)),
        prev_arena_(core::BufferArena::Global().SetEnabledForTesting(
            arena_on)) {
    ThreadPool::SetGlobalNumThreads(jobs);
  }
  ~ScopedEngineConfig() {
    ag::Tape::SetBackwardModeForTesting(prev_mode_);
    core::BufferArena::Global().SetEnabledForTesting(prev_arena_);
    ThreadPool::SetGlobalNumThreads(0);
  }

 private:
  ag::BackwardMode prev_mode_;
  bool prev_arena_;
};

Row MeasureConfig(const Fixture& f, ag::BackwardMode mode, int jobs,
                  bool arena_on, int steps, int reps) {
  ScopedEngineConfig cfg(mode, jobs, arena_on);
  core::BufferArena& arena = core::BufferArena::Global();
  arena.Clear();

  Row row;
  row.mode = mode == ag::BackwardMode::kParallel ? "parallel" : "serial";
  row.jobs = jobs;
  row.arena = arena_on ? "on" : "off";

  using clock = std::chrono::steady_clock;
  ag::Tape t;
  double best_total = 1e30;
  for (int rep = 0; rep < reps + 1; ++rep) {
    // Warm-up rep (rep 0) populates the arena free lists and the tape's
    // node capacity, so the measured reps see steady-state reuse.
    double fwd = 0.0, bwd = 0.0;
    const core::BufferArena::Stats before = arena.stats();
    auto rep0 = clock::now();
    for (int s = 0; s < steps; ++s) {
      auto t0 = clock::now();
      t.Reset();
      ag::Var loss = BuildStep(t, f);
      auto t1 = clock::now();
      t.Backward(loss);
      auto t2 = clock::now();
      fwd += std::chrono::duration<double>(t1 - t0).count();
      bwd += std::chrono::duration<double>(t2 - t1).count();
    }
    double total = std::chrono::duration<double>(clock::now() - rep0).count();
    if (rep == 0) continue;
    const core::BufferArena::Stats after = arena.stats();
    if (total < best_total) {
      best_total = total;
      row.step_seconds = total / steps;
      row.forward_seconds = fwd / steps;
      row.backward_seconds = bwd / steps;
      const double mallocs = static_cast<double>(
          (after.misses - before.misses) + (after.bypass - before.bypass));
      row.mallocs_per_step = mallocs / steps;
      const double touched = static_cast<double>(
          (after.hits - before.hits) + (after.misses - before.misses));
      row.arena_hit_rate =
          touched > 0 ? static_cast<double>(after.hits - before.hits) / touched
                      : 0.0;
    }
  }
  arena.Clear();
  return row;
}

std::vector<int> JobSweep(int max_jobs) {
  std::vector<int> jobs;
  for (int j = 1; j < max_jobs; j *= 2) jobs.push_back(j);
  jobs.push_back(max_jobs);
  jobs.erase(std::unique(jobs.begin(), jobs.end()), jobs.end());
  return jobs;
}

void PrintTable(const std::vector<Row>& rows) {
  std::printf("%-9s %5s %6s %12s %12s %12s %14s %9s\n", "mode", "jobs",
              "arena", "step_ms", "forward_ms", "backward_ms",
              "mallocs/step", "hit_rate");
  for (const Row& r : rows) {
    std::printf("%-9s %5d %6s %12.3f %12.3f %12.3f %14.1f %9.3f\n",
                r.mode.c_str(), r.jobs, r.arena.c_str(),
                r.step_seconds * 1e3, r.forward_seconds * 1e3,
                r.backward_seconds * 1e3, r.mallocs_per_step,
                r.arena_hit_rate);
  }
}

int WriteJson(const char* path, const Fixture& f, int steps, int reps,
              const std::vector<Row>& rows, const char* gate_status,
              double speedup, const std::string& gate_reason) {
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "bench: cannot open %s for writing\n", path);
    return 1;
  }
  std::fprintf(out, "{\n  \"schema\": \"bgc-bench-tape-v1\",\n");
  std::fprintf(out,
               "  \"config\": {\"n_syn\": %d, \"dim\": %d, \"classes\": %d, "
               "\"rank\": %d, \"sgc_k\": %d, \"steps\": %d, \"reps\": %d},\n",
               f.n_syn, f.dim, f.num_classes, f.rank, f.sgc_k, steps, reps);
  std::fprintf(out, "  \"results\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(out,
                 "    {\"mode\": \"%s\", \"jobs\": %d, \"arena\": \"%s\", "
                 "\"step_seconds\": %.6e, \"forward_seconds\": %.6e, "
                 "\"backward_seconds\": %.6e, \"mallocs_per_step\": %.1f, "
                 "\"arena_hit_rate\": %.3f}%s\n",
                 r.mode.c_str(), r.jobs, r.arena.c_str(), r.step_seconds,
                 r.forward_seconds, r.backward_seconds, r.mallocs_per_step,
                 r.arena_hit_rate, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"gate\": {\"name\": \"tape_parallel_beats_serial\", ");
  if (std::strcmp(gate_status, "skipped") == 0) {
    std::fprintf(out, "\"status\": \"skipped\", \"reason\": \"%s\"}\n",
                 gate_reason.c_str());
  } else {
    std::fprintf(out, "\"status\": \"%s\", \"speedup\": %.3f}\n", gate_status,
                 speedup);
  }
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::fprintf(stderr, "bench: wrote %s (%zu rows)\n", path, rows.size());
  return 0;
}

[[noreturn]] void DieUsage(const char* arg) {
  std::fprintf(stderr,
               "bench_tape_replay: unknown or incomplete flag '%s'\n"
               "usage: bench_tape_replay [--paper] [--steps N] [--reps N] "
               "[--jobs N] [--json PATH]\n",
               arg);
  std::exit(2);
}

// Checked flag-value parse (src/core/parse.h): malformed or out-of-range
// values exit 2 naming the flag, instead of atoi quietly producing 0 and
// tripping the generic non-positive check (or, for "5x", running with 5).
int IntFlagValue(const char* flag, const char* text) {
  StatusOr<long long> v = ParseIntInRange(text, 1, 1 << 20);
  if (v.ok()) return static_cast<int>(v.value());
  std::fprintf(stderr, "bench_tape_replay: bad value for %s: %s\n", flag,
               v.status().message().c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  bool paper = false;
  int steps = 30;
  int reps = 3;
  int max_jobs = ThreadPool::DefaultNumThreads();
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--paper") == 0) {
      paper = true;
    } else if (std::strcmp(argv[i], "--steps") == 0 && i + 1 < argc) {
      steps = IntFlagValue("--steps", argv[++i]);
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = IntFlagValue("--reps", argv[++i]);
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      max_jobs = IntFlagValue("--jobs", argv[++i]);
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      DieUsage(argv[i]);
    }
  }
  if (steps < 1 || reps < 1 || max_jobs < 1) DieUsage("(non-positive value)");

  const Fixture f = MakeFixture(paper);
  std::fprintf(stderr,
               "bench: tape replay n_syn=%d dim=%d classes=%d steps=%d "
               "reps=%d jobs<=%d\n",
               f.n_syn, f.dim, f.num_classes, steps, reps, max_jobs);

  std::vector<Row> rows;
  // Serial baseline (thread count is irrelevant to the serial walk).
  rows.push_back(MeasureConfig(f, ag::BackwardMode::kSerial, 1, true, steps,
                               reps));
  // Parallel sweep over thread counts.
  for (int jobs : JobSweep(max_jobs)) {
    rows.push_back(MeasureConfig(f, ag::BackwardMode::kParallel, jobs, true,
                                 steps, reps));
  }
  // Arena-off contrast rows: every Matrix allocation pays malloc/free.
  rows.push_back(MeasureConfig(f, ag::BackwardMode::kSerial, 1, false, steps,
                               reps));
  rows.push_back(MeasureConfig(f, ag::BackwardMode::kParallel, max_jobs,
                               false, steps, reps));

  // Gate: parallel backward at the highest swept thread count must beat
  // the serial walk. Meaningless on one core — auto-skip with a notice.
  const Row& serial = rows.front();
  const Row* par_best = nullptr;
  for (const Row& r : rows) {
    if (r.mode == "parallel" && r.arena == "on" && r.jobs == max_jobs) {
      par_best = &r;
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  const char* gate_status;
  double speedup = 0.0;
  std::string gate_reason;
  if (hw <= 1 || max_jobs <= 1) {
    gate_status = "skipped";
    gate_reason = hw <= 1 ? "single hardware thread on this machine"
                          : "sweep capped at --jobs 1";
    std::fprintf(stderr,
                 "bench: tape parallel-vs-serial gate SKIPPED: %s\n",
                 gate_reason.c_str());
  } else {
    speedup = serial.backward_seconds / par_best->backward_seconds;
    if (speedup > 1.0) {
      gate_status = "pass";
      std::fprintf(stderr,
                   "bench: tape parallel-vs-serial gate PASS: backward "
                   "%.2fx serial at %d jobs (> 1.0x required)\n",
                   speedup, max_jobs);
    } else {
      gate_status = "fail";
      std::fprintf(stderr,
                   "bench: tape parallel-vs-serial gate FAIL: backward "
                   "%.2fx serial at %d jobs (> 1.0x required)\n",
                   speedup, max_jobs);
    }
  }

  if (json_path != nullptr) {
    int rc = WriteJson(json_path, f, steps, reps, rows, gate_status, speedup,
                       gate_reason);
    if (rc != 0) return rc;
  } else {
    PrintTable(rows);
  }
  return std::strcmp(gate_status, "fail") == 0 ? 1 : 0;
}
