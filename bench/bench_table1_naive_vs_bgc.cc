// Reproduces Table 1: naively poisoning the condensed graph collapses the
// GNN's clean accuracy, while BGC keeps CTA at the clean level with a
// saturated ASR. Condensation method: GCond; datasets: Cora r=5.2%,
// Citeseer r=3.6%.

#include <iostream>

#include "bench/bench_common.h"

namespace {

using namespace bgc;       // NOLINT
using namespace bgc::bench;  // NOLINT

void Run(const Options& opt) {
  PrintHeader("Table 1 — Naive Poison vs BGC (GCond)", opt);
  eval::TextTable table({"Attack Method", "Metric", "Cora, r=5.2%",
                         "Citeseer, r=3.6%"});

  auto make_cell = [&](const std::string& dataset, const std::string& attack) {
    DatasetSetup setup = GetSetup(dataset, opt);
    return MakeSpec(setup, /*ratio_idx=*/2, "gcond", attack, opt);
  };
  // Under --jobs the naive and bgc cells of each dataset run concurrently;
  // their shared clean-baseline condensation is computed once and
  // coalesced by the artifact cache's single-flight path when caching is
  // enabled.
  const std::vector<std::string> labels = {"cora/naive", "citeseer/naive",
                                           "cora/bgc", "citeseer/bgc"};
  const std::vector<eval::CellResult> results =
      RunCells(opt, {make_cell("cora", "naive"), make_cell("citeseer", "naive"),
                     make_cell("cora", "bgc"), make_cell("citeseer", "bgc")});
  ReportCellErrors("table1", results, [&](int i) { return labels[i]; });
  const eval::CellResult& naive_cora = results[0];
  const eval::CellResult& naive_cite = results[1];
  const eval::CellResult& bgc_cora = results[2];
  const eval::CellResult& bgc_cite = results[3];

  table.AddRow({"Clean Model", "CTA", CellPct(bgc_cora, bgc_cora.stats.c_cta),
                CellPct(bgc_cite, bgc_cite.stats.c_cta)});
  table.AddRow({"Naive Poison", "CTA", CellPct(naive_cora, naive_cora.stats.cta),
                CellPct(naive_cite, naive_cite.stats.cta)});
  table.AddRow({"Naive Poison", "ASR", CellPct(naive_cora, naive_cora.stats.asr),
                CellPct(naive_cite, naive_cite.stats.asr)});
  table.AddRow({"BGC", "CTA", CellPct(bgc_cora, bgc_cora.stats.cta),
                CellPct(bgc_cite, bgc_cite.stats.cta)});
  table.AddRow({"BGC", "ASR", CellPct(bgc_cora, bgc_cora.stats.asr),
                CellPct(bgc_cite, bgc_cite.stats.asr)});
  table.Print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  Run(Parse(argc, argv));
  return 0;
}
