// Reproduces Table 1: naively poisoning the condensed graph collapses the
// GNN's clean accuracy, while BGC keeps CTA at the clean level with a
// saturated ASR. Condensation method: GCond; datasets: Cora r=5.2%,
// Citeseer r=3.6%.

#include <iostream>

#include "bench/bench_common.h"

namespace {

using namespace bgc;       // NOLINT
using namespace bgc::bench;  // NOLINT

void Run(const Options& opt) {
  PrintHeader("Table 1 — Naive Poison vs BGC (GCond)", opt);
  eval::TextTable table({"Attack Method", "Metric", "Cora, r=5.2%",
                         "Citeseer, r=3.6%"});

  struct Cell {
    eval::CellStats stats;
  };
  auto run_cell = [&](const std::string& dataset, const std::string& attack) {
    DatasetSetup setup = GetSetup(dataset, opt);
    eval::RunSpec spec = MakeSpec(setup, /*ratio_idx=*/2, "gcond", attack,
                                  opt);
    return eval::RunExperiment(spec);
  };

  eval::CellStats naive_cora = run_cell("cora", "naive");
  eval::CellStats naive_cite = run_cell("citeseer", "naive");
  eval::CellStats bgc_cora = run_cell("cora", "bgc");
  eval::CellStats bgc_cite = run_cell("citeseer", "bgc");

  table.AddRow({"Clean Model", "CTA", Pct(bgc_cora.c_cta),
                Pct(bgc_cite.c_cta)});
  table.AddRow({"Naive Poison", "CTA", Pct(naive_cora.cta),
                Pct(naive_cite.cta)});
  table.AddRow({"Naive Poison", "ASR", Pct(naive_cora.asr),
                Pct(naive_cite.asr)});
  table.AddRow({"BGC", "CTA", Pct(bgc_cora.cta), Pct(bgc_cite.cta)});
  table.AddRow({"BGC", "ASR", Pct(bgc_cora.asr), Pct(bgc_cite.asr)});
  table.Print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  Run(Parse(argc, argv));
  return 0;
}
