// Reduction-robustness transfer matrix: every attack × reduction-method ×
// defense cell in one sweep. The method axis spans the learned condensers
// (gcond, gcond-x, doscond, gc-sntk) and the src/reduce training-free
// backends (coarsen, sparsify-er, sparsify-rand), so the table answers
// "does a backdoor crafted against condensation survive classical graph
// reduction, and which defense recovers it?" in a single run.
//
// The attack axis uses the four dispatchable poisoners (bgc, gta, naive,
// doorping — doorping standing in for an ego-style per-node attack, which
// this codebase does not implement as a poisoner). The defense axis is
// none / prune / jaccard / randsmooth / outlier-filter, sharing one attack
// per (attack, method, repeat) unit the way bench_table5_defense does.
//
// Output: the stdout table plus, with --json=PATH, a
// "bgc-transfer-matrix-v1" JSON report (%.17g numbers). Both are
// bit-identical for every --jobs=N: units are pure functions of their
// index and the reduction runs in unit order.

#include <cstdio>
#include <cstring>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/data/synthetic.h"
#include "src/defense/defenses.h"

namespace {

using namespace bgc;         // NOLINT
using namespace bgc::bench;  // NOLINT

const std::vector<std::string> kAttacks = {"bgc", "gta", "naive",
                                           "doorping"};
const std::vector<std::string> kMethods = {
    "gcond", "gcond-x", "doscond", "gc-sntk",
    "coarsen", "sparsify-er", "sparsify-rand"};
const std::vector<std::string> kDefenses = {"none", "prune", "jaccard",
                                            "randsmooth", "outlier"};
constexpr int kNumDefenses = 5;

eval::RunSpec BaseSpec(const Options& opt, const std::string& method,
                       const std::string& attack) {
  eval::RunSpec spec;
  spec.dataset = "cora-sim";
  spec.dataset_scale = opt.paper ? 1.0 : 0.25;
  spec.seed = opt.seed;
  spec.method = method;
  spec.attack = attack;
  spec.condense.num_condensed = opt.paper ? 35 : 8;
  spec.condense.epochs = opt.paper ? 100 : 10;
  spec.victim.epochs = opt.paper ? 300 : 60;
  return spec;
}

/// One repeat of one (attack, method) row: the five defended views of the
/// same attacked condensation, indexed like kDefenses.
struct RepeatOut {
  eval::AttackMetrics metrics[kNumDefenses];
};

// %.17g round-trips doubles exactly, matching the strict obs parser.
void JsonNum(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void JsonMeanStd(std::string& out, const MeanStd& ms) {
  out += "{\"mean\":";
  JsonNum(out, ms.mean);
  out += ",\"std\":";
  JsonNum(out, ms.std);
  out += '}';
}

void JsonNameList(std::string& out, const std::vector<std::string>& names) {
  out += '[';
  for (size_t i = 0; i < names.size(); ++i) {
    if (i > 0) out += ',';
    out += '"' + names[i] + '"';
  }
  out += ']';
}

void Run(Options opt, const std::string& json_path) {
  // Heavy sweep (140 cells): fast mode defaults to a single repeat.
  if (opt.repeats == 0 && !opt.paper) opt.repeats = 1;
  PrintHeader("Transfer matrix — attack × reduction × defense", opt);
  const int repeats = Repeats(opt);

  struct Row {
    std::string attack, method;
  };
  std::vector<Row> rows;
  for (const std::string& attack : kAttacks) {
    for (const std::string& method : kMethods) rows.push_back({attack, method});
  }

  // Unit = (row, repeat): one attacked condensation shared by the five
  // defenses, exactly one Rng stream per unit so every --jobs=N reduces
  // to the same numbers.
  const int num_units = static_cast<int>(rows.size()) * repeats;
  auto unit_body = [&](int u) {
    const Row& row = rows[u / repeats];
    const int rep = u % repeats;
    const uint64_t seed = opt.seed + rep;
    eval::RunSpec spec = BaseSpec(opt, row.method, row.attack);
    spec.seed = seed;
    data::GraphDataset ds =
        data::MakeDataset(spec.dataset, seed, spec.dataset_scale);
    condense::SourceGraph clean =
        condense::FromTrainView(data::MakeTrainView(ds));
    Rng rng(seed * 2654435761ULL + 3);
    attack::AttackResult attacked =
        eval::DispatchAttack(spec, clean, ds.num_classes, rng);
    const int yt = spec.attack_cfg.target_class;

    RepeatOut out;
    // none: the undefended backdoored victim.
    auto victim = eval::TrainVictim(attacked.condensed, spec.victim, rng);
    out.metrics[0] =
        eval::EvaluateVictim(*victim, ds, attacked.generator.get(), yt);
    // prune: retrain on the cosine-pruned condensed graph.
    condense::CondensedGraph pruned =
        defense::Prune(attacked.condensed, 0.2);
    auto pruned_victim = eval::TrainVictim(pruned, spec.victim, rng);
    out.metrics[1] = eval::EvaluateVictim(*pruned_victim, ds,
                                          attacked.generator.get(), yt);
    // jaccard: retrain on the structurally filtered graph.
    condense::CondensedGraph jaccard =
        defense::JaccardPrune(attacked.condensed, 0.05);
    auto jaccard_victim = eval::TrainVictim(jaccard, spec.victim, rng);
    out.metrics[2] = eval::EvaluateVictim(*jaccard_victim, ds,
                                          attacked.generator.get(), yt);
    // randsmooth: smoothed inference over the undefended victim.
    Rng smooth_rng(seed * 2654435761ULL + 4);
    eval::PredictFn smooth = [&](const graph::CsrMatrix& adj,
                                 const Matrix& x) {
      return defense::RandsmoothPredict(*victim, adj, x, /*num_samples=*/9,
                                        /*keep_prob=*/0.7, smooth_rng);
    };
    out.metrics[3] = eval::EvaluateWithPredict(smooth, ds,
                                               attacked.generator.get(), yt);
    // outlier: retrain after dropping MAD feature-norm outliers.
    condense::CondensedGraph filtered =
        defense::FilterFeatureOutliers(attacked.condensed, 5.0);
    auto filtered_victim = eval::TrainVictim(filtered, spec.victim, rng);
    out.metrics[4] = eval::EvaluateVictim(*filtered_victim, ds,
                                          attacked.generator.get(), yt);
    return out;
  };
  const auto slots = eval::RunGrid(Grid(opt), num_units, unit_body);

  // Reduce in row order: aggregated stats per (row, defense), rows that
  // lost every repeat become ERR cells.
  struct RowStats {
    bool ok = false;
    MeanStd cta[kNumDefenses];
    MeanStd asr[kNumDefenses];
  };
  std::vector<RowStats> stats(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    std::vector<double> ctas[kNumDefenses], asrs[kNumDefenses];
    for (int rep = 0; rep < repeats; ++rep) {
      const auto& slot = slots[i * repeats + rep];
      if (!slot.status.ok()) {
        std::fprintf(stderr, "[transfer] %s/%s repeat %d failed: %s\n",
                     rows[i].attack.c_str(), rows[i].method.c_str(), rep,
                     slot.status.message().c_str());
        continue;
      }
      for (int d = 0; d < kNumDefenses; ++d) {
        ctas[d].push_back(slot.value.metrics[d].cta);
        asrs[d].push_back(slot.value.metrics[d].asr);
      }
    }
    if (ctas[0].empty()) continue;
    stats[i].ok = true;
    for (int d = 0; d < kNumDefenses; ++d) {
      stats[i].cta[d] = ComputeMeanStd(ctas[d]);
      stats[i].asr[d] = ComputeMeanStd(asrs[d]);
    }
  }

  eval::TextTable table({"Attack", "Method", "None CTA", "None ASR",
                         "Prune CTA", "Prune ASR", "Jacc CTA", "Jacc ASR",
                         "Rsm CTA", "Rsm ASR", "Outl CTA", "Outl ASR"});
  for (size_t i = 0; i < rows.size(); ++i) {
    std::vector<std::string> cells = {rows[i].attack, rows[i].method};
    for (int d = 0; d < kNumDefenses; ++d) {
      if (stats[i].ok) {
        cells.push_back(Pct(stats[i].cta[d]));
        cells.push_back(Pct(stats[i].asr[d]));
      } else {
        cells.push_back("ERR");
        cells.push_back("ERR");
      }
    }
    table.AddRow(cells);
  }
  table.Print(std::cout);

  if (json_path.empty()) return;
  std::string json = "{\"schema\":\"bgc-transfer-matrix-v1\",\"mode\":\"";
  json += opt.paper ? "paper" : "fast";
  json += "\",\"seed\":";
  JsonNum(json, static_cast<double>(opt.seed));
  json += ",\"repeats\":" + std::to_string(repeats);
  json += ",\"attacks\":";
  JsonNameList(json, kAttacks);
  json += ",\"methods\":";
  JsonNameList(json, kMethods);
  json += ",\"defenses\":";
  JsonNameList(json, kDefenses);
  json += ",\"cells\":[";
  bool first = true;
  for (size_t i = 0; i < rows.size(); ++i) {
    for (int d = 0; d < kNumDefenses; ++d) {
      if (!first) json += ',';
      first = false;
      json += "{\"attack\":\"" + rows[i].attack + "\",\"method\":\"" +
              rows[i].method + "\",\"defense\":\"" + kDefenses[d] + "\"";
      if (stats[i].ok) {
        json += ",\"ok\":true,\"cta\":";
        JsonMeanStd(json, stats[i].cta[d]);
        json += ",\"asr\":";
        JsonMeanStd(json, stats[i].asr[d]);
      } else {
        json += ",\"ok\":false";
      }
      json += '}';
    }
  }
  json += "]}\n";
  if (json_path == "-") {
    std::fwrite(json.data(), 1, json.size(), stdout);
    return;
  }
  std::FILE* f = std::fopen(json_path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", json_path.c_str());
    std::exit(1);
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  // bench::Parse exits on unknown flags; peel off --json first.
  std::string json_path;
  std::vector<char*> rest;
  rest.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      rest.push_back(argv[i]);
    }
  }
  Run(Parse(static_cast<int>(rest.size()), rest.data()), json_path);
  return 0;
}
