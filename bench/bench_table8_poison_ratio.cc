// Reproduces Table 8 (appendix): varying the poisoning budget. A larger
// poisoned set does not improve utility — CTA decays as the poison number
// grows while ASR stays saturated. Cora r=1.30% sweeps the poison ratio
// {0.10, 0.15, 0.20}; Reddit r=0.05% sweeps the absolute poison number.

#include <iostream>

#include "bench/bench_common.h"

namespace {

using namespace bgc;         // NOLINT
using namespace bgc::bench;  // NOLINT

void Run(Options opt) {
  // Heavy sweep: fast mode defaults to a single repeat (override with
  // --repeats).
  if (opt.repeats == 0 && !opt.paper) opt.repeats = 1;
  PrintHeader("Table 8 — Varying the poisoning budget", opt);
  const std::vector<std::string> methods = {"dc-graph", "gcond", "gcond-x"};

  struct Row {
    std::string dataset, budget, method;
  };
  std::vector<eval::RunSpec> cells;
  std::vector<Row> rows;

  // Cora, ratio sweep.
  {
    DatasetSetup setup = GetSetup("cora", opt);
    for (double ratio : {0.10, 0.15, 0.20}) {
      for (const std::string& method : methods) {
        eval::RunSpec spec = MakeSpec(setup, /*ratio_idx=*/0, method, "bgc",
                                      opt);
        spec.eval_clean_baseline = false;
        spec.attack_cfg.poison_budget = 0;
        spec.attack_cfg.poison_ratio = ratio;
        cells.push_back(spec);
        char label[32];
        std::snprintf(label, sizeof(label), "P.R.=%.2f", ratio);
        rows.push_back({"cora r=1.30%", label, method});
      }
    }
  }
  // Reddit, absolute poison-number sweep (paper: 130/180/230; the fast
  // mode halves them with the halved graph).
  {
    DatasetSetup setup = GetSetup("reddit", opt);
    const std::vector<int> numbers =
        opt.paper ? std::vector<int>{130, 180, 230}
                  : std::vector<int>{65, 90, 115};
    for (int number : numbers) {
      for (const std::string& method : methods) {
        eval::RunSpec spec = MakeSpec(setup, /*ratio_idx=*/0, method, "bgc",
                                      opt);
        spec.eval_clean_baseline = false;
        spec.attack_cfg.poison_budget = number;
        cells.push_back(spec);
        rows.push_back({"reddit r=0.05%", "P.N.=" + std::to_string(number),
                        method});
      }
    }
  }
  const std::vector<eval::CellResult> results = RunCells(opt, cells);
  ReportCellErrors("table8", results, [&](int i) {
    return rows[i].dataset + "/" + rows[i].budget + "/" + rows[i].method;
  });

  eval::TextTable table(
      {"Dataset", "Budget", "Method", "CTA", "ASR"});
  for (size_t i = 0; i < rows.size(); ++i) {
    const eval::CellResult& res = results[i];
    table.AddRow({rows[i].dataset, rows[i].budget, rows[i].method,
                  CellPct(res, res.stats.cta), CellPct(res, res.stats.asr)});
  }
  table.Print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  Run(Parse(argc, argv));
  return 0;
}
