// Ablation (extension beyond the paper): BGC against the full condensation
// zoo, including the two methods from the paper's related work that its
// evaluation skips — DosCond (one-step gradient matching) and GCDM
// (distribution matching). Also reports the clean-label BGC variant, which
// never flips labels (stealthier; lower ASR at the same budget).

#include <iostream>

#include "bench/bench_common.h"

namespace {

using namespace bgc;         // NOLINT
using namespace bgc::bench;  // NOLINT

void Run(Options opt) {
  // Heavy sweep: fast mode defaults to a single repeat (override with
  // --repeats).
  if (opt.repeats == 0 && !opt.paper) opt.repeats = 1;
  PrintHeader(
      "Ablation — BGC across six condensation methods + clean-label variant",
      opt);
  DatasetSetup setup = GetSetup("cora", opt);
  const std::vector<std::string> methods = {"dc-graph", "gcond", "gcond-x",
                                            "gc-sntk", "doscond", "gcdm"};

  std::vector<eval::RunSpec> cells;
  std::vector<std::pair<std::string, std::string>> rows;  // method, variant
  for (const std::string& method : methods) {
    cells.push_back(MakeSpec(setup, /*ratio_idx=*/1, method, "bgc", opt));
    rows.emplace_back(method, "BGC");
  }
  // Clean-label variant on the paper's default method; larger budget since
  // clean-label poisoning is weaker per node.
  {
    eval::RunSpec spec = MakeSpec(setup, /*ratio_idx=*/1, "gcond", "bgc",
                                  opt);
    spec.attack_cfg.clean_label = true;
    spec.attack_cfg.poison_ratio = 0.2;
    cells.push_back(spec);
    rows.emplace_back("gcond", "BGC clean-label");
  }
  const std::vector<eval::CellResult> results = RunCells(opt, cells);
  ReportCellErrors("ablation-methods", results, [&](int i) {
    return rows[i].first + "/" + rows[i].second;
  });

  eval::TextTable table(
      {"Method", "Variant", "C-CTA", "CTA", "ASR"});
  for (size_t i = 0; i < rows.size(); ++i) {
    const eval::CellResult& res = results[i];
    table.AddRow({rows[i].first, rows[i].second,
                  CellPct(res, res.stats.c_cta), CellPct(res, res.stats.cta),
                  CellPct(res, res.stats.asr)});
  }
  table.Print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  Run(Parse(argc, argv));
  return 0;
}
