// Ablation (extension beyond the paper): BGC against the full condensation
// zoo, including the two methods from the paper's related work that its
// evaluation skips — DosCond (one-step gradient matching) and GCDM
// (distribution matching). Also reports the clean-label BGC variant, which
// never flips labels (stealthier; lower ASR at the same budget).

#include <iostream>

#include "bench/bench_common.h"

namespace {

using namespace bgc;         // NOLINT
using namespace bgc::bench;  // NOLINT

void Run(Options opt) {
  // Heavy sweep: fast mode defaults to a single repeat (override with
  // --repeats).
  if (opt.repeats == 0 && !opt.paper) opt.repeats = 1;
  PrintHeader(
      "Ablation — BGC across six condensation methods + clean-label variant",
      opt);
  DatasetSetup setup = GetSetup("cora", opt);
  eval::TextTable table(
      {"Method", "Variant", "C-CTA", "CTA", "ASR"});
  const std::vector<std::string> methods = {"dc-graph", "gcond", "gcond-x",
                                            "gc-sntk", "doscond", "gcdm"};
  for (const std::string& method : methods) {
    eval::RunSpec spec = MakeSpec(setup, /*ratio_idx=*/1, method, "bgc", opt);
    eval::CellStats stats = eval::RunExperiment(spec);
    table.AddRow({method, "BGC", Pct(stats.c_cta), Pct(stats.cta),
                  Pct(stats.asr)});
    std::fflush(stdout);
  }
  // Clean-label variant on the paper's default method; larger budget since
  // clean-label poisoning is weaker per node.
  {
    eval::RunSpec spec = MakeSpec(setup, /*ratio_idx=*/1, "gcond", "bgc",
                                  opt);
    spec.attack_cfg.clean_label = true;
    spec.attack_cfg.poison_ratio = 0.2;
    eval::CellStats stats = eval::RunExperiment(spec);
    table.AddRow({"gcond", "BGC clean-label", Pct(stats.c_cta),
                  Pct(stats.cta), Pct(stats.asr)});
  }
  table.Print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  Run(Parse(argc, argv));
  return 0;
}
