// Reproduces Figure 4: ASR and CTA as functions of the number of
// condensation epochs (GCond + BGC). Both rise and then stabilize; ASR can
// converge later than CTA on the hard inductive dataset.

#include <iostream>

#include "bench/bench_common.h"

namespace {

using namespace bgc;         // NOLINT
using namespace bgc::bench;  // NOLINT

void Run(const Options& opt) {
  PrintHeader("Figure 4 — ASR/CTA vs condensation epochs (GCond + BGC)",
              opt);
  const std::vector<std::pair<std::string, int>> dataset_ratio = {
      {"cora", 1}, {"citeseer", 1}, {"flickr", 1}, {"reddit", 1}};
  const std::vector<int> epoch_grid =
      opt.paper ? std::vector<int>{25, 50, 100, 200, 400, 700, 1000}
                : std::vector<int>{10, 25, 50, 100, 150};

  struct Row {
    std::string dataset;
    int epochs = 0;
  };
  std::vector<eval::RunSpec> cells;
  std::vector<Row> rows;
  for (const auto& [dataset, ratio_idx] : dataset_ratio) {
    DatasetSetup setup = GetSetup(dataset, opt);
    for (int epochs : epoch_grid) {
      eval::RunSpec spec = MakeSpec(setup, ratio_idx, "gcond", "bgc", opt);
      spec.eval_clean_baseline = false;
      spec.condense.epochs = epochs;
      // The series is about the trend; a single repeat per point keeps the
      // sweep affordable (pass --repeats to widen).
      if (opt.repeats == 0) spec.repeats = opt.paper ? 2 : 1;
      cells.push_back(spec);
      rows.push_back({dataset, epochs});
    }
  }
  const std::vector<eval::CellResult> results = RunCells(opt, cells);
  ReportCellErrors("fig4", results, [&](int i) {
    return rows[i].dataset + "/epochs=" + std::to_string(rows[i].epochs);
  });

  eval::TextTable table({"Dataset", "Epochs", "CTA", "ASR"});
  for (size_t i = 0; i < rows.size(); ++i) {
    const eval::CellResult& res = results[i];
    table.AddRow({rows[i].dataset, std::to_string(rows[i].epochs),
                  CellPct(res, res.stats.cta), CellPct(res, res.stats.asr)});
  }
  table.Print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  Run(Parse(argc, argv));
  return 0;
}
