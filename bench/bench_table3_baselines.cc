// Reproduces Table 3: BGC against prior backdoor baselines adapted to
// condensation — GTA (triggers frozen before condensation) and DOORPING
// (universal trigger re-optimized during condensation) — on GCond-X and
// GC-SNTK over Citeseer and Flickr.

#include <iostream>

#include "bench/bench_common.h"

namespace {

using namespace bgc;         // NOLINT
using namespace bgc::bench;  // NOLINT

void Run(Options opt) {
  // Heavy sweep: fast mode defaults to a single repeat (override with
  // --repeats).
  if (opt.repeats == 0 && !opt.paper) opt.repeats = 1;
  PrintHeader("Table 3 — Attack performance comparison (GTA / DOORPING / BGC)",
              opt);
  const std::vector<std::string> methods = {"gcond-x", "gc-sntk"};
  const std::vector<std::string> datasets = {"citeseer", "flickr"};
  const std::vector<std::string> attacks = {"gta", "doorping", "bgc"};

  struct Row {
    std::string method, dataset, ratio, attack;
  };
  std::vector<eval::RunSpec> cells;
  std::vector<Row> rows;
  for (const std::string& method : methods) {
    for (const std::string& dataset : datasets) {
      DatasetSetup setup = GetSetup(dataset, opt);
      for (size_t r = 0; r < setup.ratio_labels.size(); ++r) {
        for (const std::string& attack : attacks) {
          eval::RunSpec spec =
              MakeSpec(setup, static_cast<int>(r), method, attack, opt);
          // CTA/ASR of the attacked run only; the clean reference is
          // covered by Table 2.
          spec.eval_clean_baseline = false;
          cells.push_back(spec);
          rows.push_back({method, dataset, setup.ratio_labels[r], attack});
        }
      }
    }
  }
  const std::vector<eval::CellResult> results = RunCells(opt, cells);
  ReportCellErrors("table3", results, [&](int i) {
    return rows[i].method + "/" + rows[i].dataset + "/" + rows[i].attack;
  });

  eval::TextTable table({"Cond. Method", "Dataset", "Ratio (r)", "Attack",
                         "CTA", "ASR"});
  for (size_t i = 0; i < rows.size(); ++i) {
    const eval::CellResult& res = results[i];
    table.AddRow({rows[i].method, rows[i].dataset, rows[i].ratio,
                  rows[i].attack, CellPct(res, res.stats.cta),
                  CellPct(res, res.stats.asr)});
  }
  table.Print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  Run(Parse(argc, argv));
  return 0;
}
