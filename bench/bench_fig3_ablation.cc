// Reproduces Figure 3: ablation of the poisoned-node selection module.
// BGC (representative selection) vs BGC_Rand (random selection) with
// condensation method DC-Graph on Flickr — BGC dominates on both CTA and
// ASR and is more stable (smaller std).

#include <iostream>

#include "bench/bench_common.h"

namespace {

using namespace bgc;         // NOLINT
using namespace bgc::bench;  // NOLINT

void Run(const Options& opt) {
  PrintHeader("Figure 3 — Selection-module ablation (DC-Graph, Flickr)",
              opt);
  DatasetSetup setup = GetSetup("flickr", opt);

  struct Row {
    std::string ratio, variant;
  };
  std::vector<eval::RunSpec> cells;
  std::vector<Row> rows;
  for (size_t r = 0; r < setup.ratio_labels.size(); ++r) {
    for (const char* variant : {"bgc", "bgc-rand"}) {
      eval::RunSpec spec =
          MakeSpec(setup, static_cast<int>(r), "dc-graph", variant, opt);
      spec.eval_clean_baseline = false;
      cells.push_back(spec);
      rows.push_back({setup.ratio_labels[r],
                      std::string(variant) == "bgc" ? "BGC" : "BGC_Rand"});
    }
  }
  const std::vector<eval::CellResult> results = RunCells(opt, cells);
  ReportCellErrors("fig3", results, [&](int i) {
    return rows[i].ratio + "/" + rows[i].variant;
  });

  eval::TextTable table(
      {"Ratio (r)", "Variant", "CTA", "ASR"});
  for (size_t i = 0; i < rows.size(); ++i) {
    const eval::CellResult& res = results[i];
    table.AddRow({rows[i].ratio, rows[i].variant, CellPct(res, res.stats.cta),
                  CellPct(res, res.stats.asr)});
  }
  table.Print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  Run(Parse(argc, argv));
  return 0;
}
