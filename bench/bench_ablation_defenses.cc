// Ablation (extension): the defense suite — including the two extensions
// (Jaccard pruning, feature-outlier filtering) — against both Naive Poison
// and BGC. Measured result: no defense removes either backdoor; the
// malicious signal lives inside in-distribution synthetic features (the
// paper's §7 "more challenging to defend" claim).

#include <iostream>

#include "bench/bench_common.h"
#include "src/attack/bgc.h"
#include "src/attack/naive.h"
#include "src/data/synthetic.h"
#include "src/defense/defenses.h"

namespace {

using namespace bgc;         // NOLINT
using namespace bgc::bench;  // NOLINT

void Run(Options opt) {
  // Heavy sweep: fast mode defaults to a single repeat (override with
  // --repeats).
  if (opt.repeats == 0 && !opt.paper) opt.repeats = 1;
  PrintHeader("Ablation — defense suite vs Naive Poison and BGC (GCond, Cora)",
              opt);
  DatasetSetup setup = GetSetup("cora", opt);
  eval::TextTable table({"Attack", "Defense", "CTA", "ASR"});

  for (const char* attack : {"naive", "bgc"}) {
    std::vector<std::vector<double>> cta(4), asr(4);
    for (int rep = 0; rep < Repeats(opt); ++rep) {
      const uint64_t seed = opt.seed + rep;
      data::GraphDataset ds =
          data::MakeDataset(setup.preset, seed, setup.scale);
      condense::SourceGraph clean =
          condense::FromTrainView(data::MakeTrainView(ds));
      Rng rng(seed * 7919ULL + 1);
      eval::RunSpec spec = MakeSpec(setup, /*ratio_idx=*/2, "gcond", attack,
                                    opt);
      auto condenser = condense::MakeCondenser("gcond");
      attack::AttackResult attacked =
          std::string(attack) == "naive"
              ? attack::RunNaivePoison(clean, ds.num_classes, *condenser,
                                       spec.condense, spec.attack_cfg, rng)
              : attack::RunBgc(clean, ds.num_classes, *condenser,
                               spec.condense, spec.attack_cfg, rng);
      const int yt = spec.attack_cfg.target_class;

      const condense::CondensedGraph variants[4] = {
          attacked.condensed,
          defense::Prune(attacked.condensed, 0.2),
          defense::JaccardPrune(attacked.condensed, 0.01),
          defense::FilterFeatureOutliers(attacked.condensed, 5.0),
      };
      for (int v = 0; v < 4; ++v) {
        auto victim = eval::TrainVictim(variants[v], spec.victim, rng);
        eval::AttackMetrics m = eval::EvaluateVictim(
            *victim, ds, attacked.generator.get(), yt);
        cta[v].push_back(m.cta);
        asr[v].push_back(m.asr);
      }
    }
    const char* defense_names[4] = {"none", "prune(cos)", "prune(jaccard)",
                                    "outlier-filter"};
    for (int v = 0; v < 4; ++v) {
      table.AddRow({attack, defense_names[v], Pct(ComputeMeanStd(cta[v])),
                    Pct(ComputeMeanStd(asr[v]))});
    }
    std::fflush(stdout);
  }
  table.Print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  Run(Parse(argc, argv));
  return 0;
}
