// Ablation (extension): the defense suite — including the two extensions
// (Jaccard pruning, feature-outlier filtering) — against both Naive Poison
// and BGC. Measured result: no defense removes either backdoor; the
// malicious signal lives inside in-distribution synthetic features (the
// paper's §7 "more challenging to defend" claim).

#include <iostream>

#include "bench/bench_common.h"
#include "src/attack/bgc.h"
#include "src/attack/naive.h"
#include "src/data/synthetic.h"
#include "src/defense/defenses.h"

namespace {

using namespace bgc;         // NOLINT
using namespace bgc::bench;  // NOLINT

/// One repeat of one attack: the four defense variants. Indexed by
/// variant.
struct RepeatOut {
  double cta[4] = {0, 0, 0, 0};
  double asr[4] = {0, 0, 0, 0};
};

void Run(Options opt) {
  // Heavy sweep: fast mode defaults to a single repeat (override with
  // --repeats).
  if (opt.repeats == 0 && !opt.paper) opt.repeats = 1;
  PrintHeader("Ablation — defense suite vs Naive Poison and BGC (GCond, Cora)",
              opt);
  DatasetSetup setup = GetSetup("cora", opt);
  const std::vector<std::string> attacks = {"naive", "bgc"};
  const int repeats = Repeats(opt);

  const int num_units = static_cast<int>(attacks.size()) * repeats;
  auto unit_body = [&](int u) {
    const std::string& attack = attacks[u / repeats];
    const int rep = u % repeats;
    const uint64_t seed = opt.seed + rep;
    data::GraphDataset ds = data::MakeDataset(setup.preset, seed, setup.scale);
    condense::SourceGraph clean =
        condense::FromTrainView(data::MakeTrainView(ds));
    Rng rng(seed * 7919ULL + 1);
    eval::RunSpec spec = MakeSpec(setup, /*ratio_idx=*/2, "gcond", attack,
                                  opt);
    auto condenser = condense::MakeCondenser("gcond");
    attack::AttackResult attacked =
        attack == "naive"
            ? attack::RunNaivePoison(clean, ds.num_classes, *condenser,
                                     spec.condense, spec.attack_cfg, rng)
            : attack::RunBgc(clean, ds.num_classes, *condenser,
                             spec.condense, spec.attack_cfg, rng);
    const int yt = spec.attack_cfg.target_class;

    const condense::CondensedGraph variants[4] = {
        attacked.condensed,
        defense::Prune(attacked.condensed, 0.2),
        defense::JaccardPrune(attacked.condensed, 0.01),
        defense::FilterFeatureOutliers(attacked.condensed, 5.0),
    };
    RepeatOut out;
    for (int v = 0; v < 4; ++v) {
      auto victim = eval::TrainVictim(variants[v], spec.victim, rng);
      eval::AttackMetrics m = eval::EvaluateVictim(
          *victim, ds, attacked.generator.get(), yt);
      out.cta[v] = m.cta;
      out.asr[v] = m.asr;
    }
    return out;
  };
  const auto slots = eval::RunGrid(Grid(opt), num_units, unit_body);

  eval::TextTable table({"Attack", "Defense", "CTA", "ASR"});
  const char* defense_names[4] = {"none", "prune(cos)", "prune(jaccard)",
                                  "outlier-filter"};
  for (size_t a = 0; a < attacks.size(); ++a) {
    std::vector<std::vector<double>> cta(4), asr(4);
    for (int rep = 0; rep < repeats; ++rep) {
      const auto& slot = slots[a * repeats + rep];
      if (!slot.status.ok()) {
        std::fprintf(stderr, "[ablation-defenses] %s repeat %d failed: %s\n",
                     attacks[a].c_str(), rep, slot.status.message().c_str());
        continue;
      }
      for (int v = 0; v < 4; ++v) {
        cta[v].push_back(slot.value.cta[v]);
        asr[v].push_back(slot.value.asr[v]);
      }
    }
    for (int v = 0; v < 4; ++v) {
      table.AddRow({attacks[a], defense_names[v],
                    cta[v].empty() ? std::string("ERR")
                                   : Pct(ComputeMeanStd(cta[v])),
                    asr[v].empty() ? std::string("ERR")
                                   : Pct(ComputeMeanStd(asr[v]))});
    }
  }
  table.Print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  Run(Parse(argc, argv));
  return 0;
}
