// Reproduces Figure 5: effect of the trigger size on ASR and CTA
// (GC-SNTK on Flickr across three ratios). Larger triggers push ASR up and
// CTA marginally down.

#include <iostream>

#include "bench/bench_common.h"

namespace {

using namespace bgc;         // NOLINT
using namespace bgc::bench;  // NOLINT

void Run(Options opt) {
  // Heavy sweep: fast mode defaults to a single repeat (override with
  // --repeats).
  if (opt.repeats == 0 && !opt.paper) opt.repeats = 1;
  PrintHeader("Figure 5 — ASR/CTA vs trigger size (GC-SNTK, Flickr)", opt);
  DatasetSetup setup = GetSetup("flickr", opt);
  const std::vector<int> sizes = {2, 4, 6, 8};

  struct Row {
    std::string ratio;
    int size = 0;
  };
  std::vector<eval::RunSpec> cells;
  std::vector<Row> rows;
  for (size_t r = 0; r < setup.ratio_labels.size(); ++r) {
    for (int size : sizes) {
      eval::RunSpec spec =
          MakeSpec(setup, static_cast<int>(r), "gc-sntk", "bgc", opt);
      spec.eval_clean_baseline = false;
      spec.attack_cfg.trigger_size = size;
      cells.push_back(spec);
      rows.push_back({setup.ratio_labels[r], size});
    }
  }
  const std::vector<eval::CellResult> results = RunCells(opt, cells);
  ReportCellErrors("fig5", results, [&](int i) {
    return rows[i].ratio + "/size=" + std::to_string(rows[i].size);
  });

  eval::TextTable table({"Ratio (r)", "Trigger size", "CTA", "ASR"});
  for (size_t i = 0; i < rows.size(); ++i) {
    const eval::CellResult& res = results[i];
    table.AddRow({rows[i].ratio, std::to_string(rows[i].size),
                  CellPct(res, res.stats.cta), CellPct(res, res.stats.asr)});
  }
  table.Print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  Run(Parse(argc, argv));
  return 0;
}
