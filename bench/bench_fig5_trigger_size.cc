// Reproduces Figure 5: effect of the trigger size on ASR and CTA
// (GC-SNTK on Flickr across three ratios). Larger triggers push ASR up and
// CTA marginally down.

#include <iostream>

#include "bench/bench_common.h"

namespace {

using namespace bgc;         // NOLINT
using namespace bgc::bench;  // NOLINT

void Run(Options opt) {
  // Heavy sweep: fast mode defaults to a single repeat (override with
  // --repeats).
  if (opt.repeats == 0 && !opt.paper) opt.repeats = 1;
  PrintHeader("Figure 5 — ASR/CTA vs trigger size (GC-SNTK, Flickr)", opt);
  DatasetSetup setup = GetSetup("flickr", opt);
  const std::vector<int> sizes = {2, 4, 6, 8};

  eval::TextTable table({"Ratio (r)", "Trigger size", "CTA", "ASR"});
  for (size_t r = 0; r < setup.ratio_labels.size(); ++r) {
    for (int size : sizes) {
      eval::RunSpec spec =
          MakeSpec(setup, static_cast<int>(r), "gc-sntk", "bgc", opt);
      spec.eval_clean_baseline = false;
      spec.attack_cfg.trigger_size = size;
      eval::CellStats stats = eval::RunExperiment(spec);
      table.AddRow({setup.ratio_labels[r], std::to_string(size),
                    Pct(stats.cta), Pct(stats.asr)});
      std::fflush(stdout);
    }
  }
  table.Print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  Run(Parse(argc, argv));
  return 0;
}
