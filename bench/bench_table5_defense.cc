// Reproduces Table 5: BGC against the Prune (dataset-level) and Randsmooth
// (model-level) defenses on GCond and GCond-X over Citeseer and Reddit.
// Both defenses trade clean accuracy for at best a modest ASR reduction.

#include <functional>
#include <iostream>

#include "bench/bench_common.h"
#include "src/attack/bgc.h"
#include "src/data/synthetic.h"
#include "src/defense/defenses.h"

namespace {

using namespace bgc;         // NOLINT
using namespace bgc::bench;  // NOLINT

std::string Delta(const MeanStd& defended, const MeanStd& base) {
  char buf[32];
  const double rel =
      base.mean > 0 ? (defended.mean - base.mean) / base.mean * 100.0 : 0.0;
  std::snprintf(buf, sizeof(buf), "%+.2f%%", rel);
  return buf;
}

/// One repeat of one (method, dataset, ratio) cell: the undefended
/// backdoored victim and both defenses, sharing the repeat's attack.
struct RepeatOut {
  eval::AttackMetrics base, pruned, smoothed;
};

void Run(Options opt) {
  // Heavy sweep: fast mode defaults to a single repeat (override with
  // --repeats).
  if (opt.repeats == 0 && !opt.paper) opt.repeats = 1;
  PrintHeader("Table 5 — Attack performance against defenses", opt);
  const std::vector<std::string> methods = {"gcond", "gcond-x"};
  const std::vector<std::string> datasets = {"citeseer", "reddit"};
  const int repeats = Repeats(opt);

  struct Row {
    std::string method, dataset, ratio;
    int ratio_idx = 0;
  };
  std::vector<Row> rows;
  for (const std::string& method : methods) {
    for (const std::string& dataset : datasets) {
      DatasetSetup setup = GetSetup(dataset, opt);
      for (size_t r = 0; r < setup.ratio_labels.size(); ++r) {
        rows.push_back({method, dataset, setup.ratio_labels[r],
                        static_cast<int>(r)});
      }
    }
  }

  // Unit = (row, repeat).
  const int num_units = static_cast<int>(rows.size()) * repeats;
  auto unit_body = [&](int u) {
    const Row& row = rows[u / repeats];
    const int rep = u % repeats;
    DatasetSetup setup = GetSetup(row.dataset, opt);
    const uint64_t seed = opt.seed + rep;
    data::GraphDataset ds = data::MakeDataset(setup.preset, seed, setup.scale);
    condense::SourceGraph clean =
        condense::FromTrainView(data::MakeTrainView(ds));
    Rng rng(seed * 2654435761ULL + 3);
    eval::RunSpec spec = MakeSpec(setup, row.ratio_idx, row.method, "bgc",
                                  opt);
    auto condenser = condense::MakeCondenser(row.method);
    attack::AttackResult attacked = attack::RunBgc(
        clean, ds.num_classes, *condenser, spec.condense, spec.attack_cfg,
        rng);
    const int yt = spec.attack_cfg.target_class;

    RepeatOut out;
    // Undefended backdoored victim.
    auto victim = eval::TrainVictim(attacked.condensed, spec.victim, rng);
    out.base = eval::EvaluateVictim(*victim, ds, attacked.generator.get(),
                                    yt);

    // Prune: retrain on the pruned condensed graph.
    condense::CondensedGraph pruned_graph =
        defense::Prune(attacked.condensed, 0.2);
    auto pruned_victim = eval::TrainVictim(pruned_graph, spec.victim, rng);
    out.pruned = eval::EvaluateVictim(*pruned_victim, ds,
                                      attacked.generator.get(), yt);

    // Randsmooth: smoothed inference with the undefended victim.
    Rng smooth_rng(seed * 2654435761ULL + 4);
    eval::PredictFn smooth = [&](const graph::CsrMatrix& adj,
                                 const Matrix& x) {
      return defense::RandsmoothPredict(*victim, adj, x,
                                        /*num_samples=*/9,
                                        /*keep_prob=*/0.7, smooth_rng);
    };
    out.smoothed = eval::EvaluateWithPredict(smooth, ds,
                                             attacked.generator.get(), yt);
    return out;
  };
  const auto slots = eval::RunGrid(Grid(opt), num_units, unit_body);

  eval::TextTable table({"Cond.", "Dataset", "Ratio (r)", "Prune CTA",
                         "dCTA", "Prune ASR", "dASR", "Rsm CTA", "dCTA",
                         "Rsm ASR", "dASR", "Bkd CTA", "Bkd ASR"});
  for (size_t i = 0; i < rows.size(); ++i) {
    std::vector<double> b_ctas, b_asrs, p_ctas, p_asrs, s_ctas, s_asrs;
    bool failed = false;
    for (int rep = 0; rep < repeats; ++rep) {
      const auto& slot = slots[i * repeats + rep];
      if (!slot.status.ok()) {
        std::fprintf(stderr, "[table5] %s/%s/%s repeat %d failed: %s\n",
                     rows[i].method.c_str(), rows[i].dataset.c_str(),
                     rows[i].ratio.c_str(), rep,
                     slot.status.message().c_str());
        failed = true;
        continue;
      }
      b_ctas.push_back(slot.value.base.cta);
      b_asrs.push_back(slot.value.base.asr);
      p_ctas.push_back(slot.value.pruned.cta);
      p_asrs.push_back(slot.value.pruned.asr);
      s_ctas.push_back(slot.value.smoothed.cta);
      s_asrs.push_back(slot.value.smoothed.asr);
    }
    if (failed && b_ctas.empty()) {
      table.AddRow({rows[i].method, rows[i].dataset, rows[i].ratio, "ERR",
                    "ERR", "ERR", "ERR", "ERR", "ERR", "ERR", "ERR", "ERR",
                    "ERR"});
      continue;
    }
    MeanStd b_cta = ComputeMeanStd(b_ctas);
    MeanStd b_asr = ComputeMeanStd(b_asrs);
    MeanStd p_cta = ComputeMeanStd(p_ctas);
    MeanStd p_asr = ComputeMeanStd(p_asrs);
    MeanStd s_cta = ComputeMeanStd(s_ctas);
    MeanStd s_asr = ComputeMeanStd(s_asrs);
    table.AddRow({rows[i].method, rows[i].dataset, rows[i].ratio, Pct(p_cta),
                  Delta(p_cta, b_cta), Pct(p_asr), Delta(p_asr, b_asr),
                  Pct(s_cta), Delta(s_cta, b_cta), Pct(s_asr),
                  Delta(s_asr, b_asr), Pct(b_cta), Pct(b_asr)});
  }
  table.Print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  Run(Parse(argc, argv));
  return 0;
}
