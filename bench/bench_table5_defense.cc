// Reproduces Table 5: BGC against the Prune (dataset-level) and Randsmooth
// (model-level) defenses on GCond and GCond-X over Citeseer and Reddit.
// Both defenses trade clean accuracy for at best a modest ASR reduction.

#include <functional>
#include <iostream>

#include "bench/bench_common.h"
#include "src/attack/bgc.h"
#include "src/data/synthetic.h"
#include "src/defense/defenses.h"

namespace {

using namespace bgc;         // NOLINT
using namespace bgc::bench;  // NOLINT

struct DefenseCell {
  std::vector<double> cta, asr;
  void Add(const eval::AttackMetrics& m) {
    cta.push_back(m.cta);
    asr.push_back(m.asr);
  }
};

std::string Delta(const MeanStd& defended, const MeanStd& base) {
  char buf[32];
  const double rel =
      base.mean > 0 ? (defended.mean - base.mean) / base.mean * 100.0 : 0.0;
  std::snprintf(buf, sizeof(buf), "%+.2f%%", rel);
  return buf;
}

void Run(Options opt) {
  // Heavy sweep: fast mode defaults to a single repeat (override with
  // --repeats).
  if (opt.repeats == 0 && !opt.paper) opt.repeats = 1;
  PrintHeader("Table 5 — Attack performance against defenses", opt);
  const std::vector<std::string> methods = {"gcond", "gcond-x"};
  const std::vector<std::string> datasets = {"citeseer", "reddit"};

  eval::TextTable table({"Cond.", "Dataset", "Ratio (r)", "Prune CTA",
                         "dCTA", "Prune ASR", "dASR", "Rsm CTA", "dCTA",
                         "Rsm ASR", "dASR", "Bkd CTA", "Bkd ASR"});

  for (const std::string& method : methods) {
    for (const std::string& dataset : datasets) {
      DatasetSetup setup = GetSetup(dataset, opt);
      for (size_t r = 0; r < setup.ratio_labels.size(); ++r) {
        DefenseCell base, pruned, smoothed;
        for (int rep = 0; rep < Repeats(opt); ++rep) {
          const uint64_t seed = opt.seed + rep;
          data::GraphDataset ds =
              data::MakeDataset(setup.preset, seed, setup.scale);
          condense::SourceGraph clean =
              condense::FromTrainView(data::MakeTrainView(ds));
          Rng rng(seed * 2654435761ULL + 3);
          eval::RunSpec spec =
              MakeSpec(setup, static_cast<int>(r), method, "bgc", opt);
          auto condenser = condense::MakeCondenser(method);
          attack::AttackResult attacked = attack::RunBgc(
              clean, ds.num_classes, *condenser, spec.condense,
              spec.attack_cfg, rng);
          const int yt = spec.attack_cfg.target_class;

          // Undefended backdoored victim.
          auto victim = eval::TrainVictim(attacked.condensed, spec.victim,
                                          rng);
          base.Add(eval::EvaluateVictim(*victim, ds,
                                        attacked.generator.get(), yt));

          // Prune: retrain on the pruned condensed graph.
          condense::CondensedGraph pruned_graph =
              defense::Prune(attacked.condensed, 0.2);
          auto pruned_victim =
              eval::TrainVictim(pruned_graph, spec.victim, rng);
          pruned.Add(eval::EvaluateVictim(*pruned_victim, ds,
                                          attacked.generator.get(), yt));

          // Randsmooth: smoothed inference with the undefended victim.
          Rng smooth_rng(seed * 2654435761ULL + 4);
          eval::PredictFn smooth = [&](const graph::CsrMatrix& adj,
                                       const Matrix& x) {
            return defense::RandsmoothPredict(*victim, adj, x,
                                              /*num_samples=*/9,
                                              /*keep_prob=*/0.7, smooth_rng);
          };
          smoothed.Add(eval::EvaluateWithPredict(
              smooth, ds, attacked.generator.get(), yt));
        }
        MeanStd b_cta = ComputeMeanStd(base.cta);
        MeanStd b_asr = ComputeMeanStd(base.asr);
        MeanStd p_cta = ComputeMeanStd(pruned.cta);
        MeanStd p_asr = ComputeMeanStd(pruned.asr);
        MeanStd s_cta = ComputeMeanStd(smoothed.cta);
        MeanStd s_asr = ComputeMeanStd(smoothed.asr);
        table.AddRow({method, dataset, setup.ratio_labels[r], Pct(p_cta),
                      Delta(p_cta, b_cta), Pct(p_asr), Delta(p_asr, b_asr),
                      Pct(s_cta), Delta(s_cta, b_cta), Pct(s_asr),
                      Delta(s_asr, b_asr), Pct(b_cta), Pct(b_asr)});
        std::fflush(stdout);
      }
    }
  }
  table.Print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  Run(Parse(argc, argv));
  return 0;
}
