// Reproduces Table 2, the paper's main result: BGC against four graph
// condensation methods on four datasets and three condensation ratios each.
// For every cell: C-CTA / CTA (utility preserved) and C-ASR / ASR (attack
// effective only on the backdoored model).

#include <iostream>

#include "bench/bench_common.h"

namespace {

using namespace bgc;         // NOLINT
using namespace bgc::bench;  // NOLINT

void Run(const Options& opt) {
  PrintHeader("Table 2 — Attack performance and model utility (BGC)", opt);
  const std::vector<std::string> methods = {"dc-graph", "gcond", "gcond-x",
                                            "gc-sntk"};
  const std::vector<std::string> datasets = {"cora", "citeseer", "flickr",
                                             "reddit"};

  // Build the whole grid first so every (cell, repeat) unit can run in
  // parallel under --jobs; the formatting pass below walks the cells in
  // the same nested order they were pushed.
  std::vector<eval::RunSpec> cells;
  std::vector<std::string> labels;
  for (const std::string& method : methods) {
    for (const std::string& dataset : datasets) {
      DatasetSetup setup = GetSetup(dataset, opt);
      for (size_t r = 0; r < setup.ratio_labels.size(); ++r) {
        cells.push_back(
            MakeSpec(setup, static_cast<int>(r), method, "bgc", opt));
        labels.push_back(method + "/" + dataset + "/" + setup.ratio_labels[r]);
      }
    }
  }
  const std::vector<eval::CellResult> results = RunCells(opt, cells);
  ReportCellErrors("table2", results, [&](int i) { return labels[i]; });

  size_t i = 0;
  for (const std::string& method : methods) {
    std::printf("-- condensation method: %s --\n", method.c_str());
    eval::TextTable table(
        {"Dataset", "Ratio (r)", "N'", "C-CTA", "CTA", "C-ASR", "ASR"});
    for (const std::string& dataset : datasets) {
      DatasetSetup setup = GetSetup(dataset, opt);
      for (size_t r = 0; r < setup.ratio_labels.size(); ++r, ++i) {
        const eval::CellResult& res = results[i];
        table.AddRow({dataset, setup.ratio_labels[r],
                      std::to_string(setup.condensed_sizes[r]),
                      CellPct(res, res.stats.c_cta),
                      CellPct(res, res.stats.cta),
                      CellPct(res, res.stats.c_asr),
                      CellPct(res, res.stats.asr)});
      }
    }
    table.Print(std::cout);
    std::printf("\n");
    std::fflush(stdout);
  }
}

}  // namespace

int main(int argc, char** argv) {
  Run(Parse(argc, argv));
  return 0;
}
