#ifndef BGC_BENCH_BENCH_COMMON_H_
#define BGC_BENCH_BENCH_COMMON_H_

// Shared scaffolding for the table/figure reproduction binaries.
//
// Every binary accepts:
//   --paper       full-size configuration (larger graphs, condensed sets,
//                 epoch counts, 3 repeats) — slower, closer to the paper.
//   --repeats=N   override the repeat count.
//   --seed=N      base seed (default 1).
//   --jobs=N      run up to N experiment units (cell × repeat) in
//                 parallel via eval::GridRunner (default 1 = serial).
//                 Output is bit-identical for every N; the BGC_NUM_THREADS
//                 kernel budget is split as max(1, threads / jobs) per
//                 unit (see src/eval/scheduler.h).
//   --metrics-out=PATH  write the bgc-obs-v1 metrics JSON there at exit
//                 ("stderr" prints it instead); BGC_METRICS/BGC_TRACE env
//                 vars work too (src/obs/obs.h).
// Flag values are parsed with src/core/parse.h: a malformed or
// out-of-range value exits with status 2 naming the flag, instead of
// silently running with atoi's 0.
// The default ("fast") configuration shrinks the inductive graphs and epoch
// counts so the full bench suite completes on one CPU core while preserving
// the paper's qualitative shape.

// Set BGC_ARTIFACT_DIR to a writable directory to cache clean
// condensations across runs (see src/store/artifact_cache.h); a warm
// second run skips recomputation and reports the time saved at exit.
// The cache is safe under --jobs>1: concurrent units that want the same
// condensation are single-flighted (computed once, shared).

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "src/core/parse.h"
#include "src/core/stats.h"
#include "src/eval/experiment.h"
#include "src/eval/scheduler.h"
#include "src/eval/table.h"
#include "src/obs/obs.h"
#include "src/store/artifact_cache.h"

namespace bgc::bench {

struct Options {
  bool paper = false;
  int repeats = 0;  // 0 = mode default (2 fast / 3 paper)
  uint64_t seed = 1;
  int jobs = 1;  // concurrent experiment units
  std::string metrics_out;  // empty = env-controlled only
};

/// Exits with status 2 naming `flag` when a value fails to parse. The
/// StatusOr overloads below keep call sites one-liners.
[[noreturn]] inline void BadFlag(const char* flag, const Status& status) {
  std::fprintf(stderr, "bad value for %s: %s\n", flag,
               status.message().c_str());
  std::exit(2);
}

inline long long IntFlag(const char* flag, const std::string& text,
                         long long min, long long max) {
  StatusOr<long long> v = ParseIntInRange(text, min, max);
  if (!v.ok()) BadFlag(flag, v.status());
  return v.value();
}

inline uint64_t U64Flag(const char* flag, const std::string& text) {
  StatusOr<uint64_t> v = ParseU64(text);
  if (!v.ok()) BadFlag(flag, v.status());
  return v.value();
}

inline Options Parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--paper") == 0) {
      opt.paper = true;
    } else if (std::strncmp(argv[i], "--repeats=", 10) == 0) {
      opt.repeats = static_cast<int>(
          IntFlag("--repeats", argv[i] + 10, 1, 1000000));
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      opt.seed = U64Flag("--seed", argv[i] + 7);
    } else if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      opt.jobs = static_cast<int>(IntFlag("--jobs", argv[i] + 7, 1, 4096));
    } else if (std::strncmp(argv[i], "--metrics-out=", 14) == 0) {
      opt.metrics_out = argv[i] + 14;
    } else if (std::strncmp(argv[i], "--benchmark", 11) == 0) {
      // google-benchmark flags pass through.
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      std::exit(2);
    }
  }
  // Benches always collect metrics (the per-phase table at exit is part of
  // their output); BGC_METRICS/BGC_TRACE env vars add JSON reports.
  obs::InitFromEnvAtExit();
  obs::SetMetricsEnabled(true);
  obs::PrintPhaseTableAtExit();
  if (!opt.metrics_out.empty()) obs::EmitMetricsAtExit(opt.metrics_out);
  return opt;
}

inline int Repeats(const Options& opt) {
  if (opt.repeats > 0) return opt.repeats;
  return opt.paper ? 3 : 2;
}

/// Grid scheduling options derived from the command line.
inline eval::GridOptions Grid(const Options& opt) {
  eval::GridOptions g;
  g.jobs = opt.jobs;
  return g;
}

/// Per-dataset experiment geometry: the paper's condensation-ratio labels
/// with matching condensed sizes N' (paper mode reproduces the paper's
/// absolute N'; fast mode scales them with the shrunken graphs).
struct DatasetSetup {
  std::string preset;                     // data::MakeDataset name
  double scale = 1.0;                     // node-count scale
  std::vector<std::string> ratio_labels;  // paper's "r" column
  std::vector<int> condensed_sizes;       // N' per ratio label
  int condense_epochs = 100;
  int poison_budget = 0;                  // 0 => poison_ratio 0.1
};

inline DatasetSetup GetSetup(const std::string& name, const Options& opt) {
  DatasetSetup s;
  if (name == "cora") {
    s.preset = "cora-sim";
    s.ratio_labels = {"1.30%", "2.60%", "5.20%"};
    s.condensed_sizes = {35, 70, 140};
    s.condense_epochs = opt.paper ? 300 : 150;
  } else if (name == "citeseer") {
    s.preset = "citeseer-sim";
    s.ratio_labels = {"0.90%", "1.80%", "3.60%"};
    s.condensed_sizes = {30, 60, 120};
    s.condense_epochs = opt.paper ? 300 : 150;
  } else if (name == "flickr") {
    s.preset = "flickr-sim";
    s.scale = opt.paper ? 1.0 : 0.5;
    s.ratio_labels = {"0.10%", "0.50%", "1.00%"};
    s.condensed_sizes = opt.paper ? std::vector<int>{44, 112, 224}
                                  : std::vector<int>{14, 28, 44};
    s.condense_epochs = opt.paper ? 200 : 60;
    s.poison_budget = opt.paper ? 80 : 60;
  } else if (name == "reddit") {
    s.preset = "reddit-sim";
    s.scale = opt.paper ? 1.0 : 0.5;
    s.ratio_labels = {"0.05%", "0.10%", "0.20%"};
    s.condensed_sizes = opt.paper ? std::vector<int>{77, 154, 308}
                                  : std::vector<int>{32, 48, 77};
    s.condense_epochs = opt.paper ? 200 : 60;
    s.poison_budget = opt.paper ? 180 : 90;
  } else {
    std::fprintf(stderr, "unknown dataset: %s\n", name.c_str());
    std::exit(2);
  }
  return s;
}

/// Process-wide artifact cache configured from BGC_ARTIFACT_DIR, or
/// nullptr when the variable is unset. The instance is deliberately leaked
/// so the atexit summary below can read its stats safely during shutdown.
inline store::ArtifactCache* SharedArtifactCache() {
  static store::ArtifactCache* cache = [] {
    store::ArtifactCache* c = store::ArtifactCache::FromEnv().release();
    if (c != nullptr) {
      std::atexit([] {
        const store::ArtifactCacheStats st = SharedArtifactCache()->stats();
        if (st.hits + st.misses + st.rejected + st.coalesced == 0) return;
        std::fprintf(stderr,
                     "[artifact-cache] hits=%lld misses=%lld rejected=%lld "
                     "coalesced=%lld computed=%.2fs saved~%.2fs (%s)\n",
                     st.hits, st.misses, st.rejected, st.coalesced,
                     st.compute_seconds, st.saved_seconds,
                     SharedArtifactCache()->dir().c_str());
      });
    }
    return c;
  }();
  return cache;
}

/// A ready-to-run spec for one (dataset, ratio, method, attack) cell.
inline eval::RunSpec MakeSpec(const DatasetSetup& setup, int ratio_idx,
                              const std::string& method,
                              const std::string& attack, const Options& opt) {
  eval::RunSpec spec;
  spec.dataset = setup.preset;
  spec.dataset_scale = setup.scale;
  spec.seed = opt.seed;
  spec.repeats = Repeats(opt);
  spec.method = method;
  spec.attack = attack;
  spec.condense.num_condensed = setup.condensed_sizes[ratio_idx];
  spec.condense.epochs = setup.condense_epochs;
  spec.attack_cfg.poison_budget = setup.poison_budget;
  spec.victim.epochs = opt.paper ? 300 : 150;
  spec.artifact_cache = SharedArtifactCache();
  return spec;
}

/// Shared grid entry point: schedules every cell's repeats onto
/// Grid(opt).jobs threads and returns results in cell order. The benches
/// build their whole spec list, call this once, then format — so the
/// printed table is bit-identical at every --jobs.
inline std::vector<eval::CellResult> RunCells(
    const Options& opt, const std::vector<eval::RunSpec>& cells) {
  return eval::GridRunner(Grid(opt)).Run(cells);
}

/// "81.23 (0.24)"-style percent cell.
inline std::string Pct(const MeanStd& ms) {
  MeanStd scaled{ms.mean * 100.0, ms.std * 100.0};
  return FormatPercentCell(scaled);
}

/// Pct() of `field` for a completed cell; "ERR" for a failed one (the
/// message goes to stderr via ReportCellErrors).
inline std::string CellPct(const eval::CellResult& r, const MeanStd& field) {
  return r.status.ok() ? Pct(field) : std::string("ERR");
}

/// Prints each failed cell's message to stderr, labeled with `table` and
/// the caller-supplied name of the cell; returns the failure count.
/// `name(i)` should render cell i the way the table labels it.
inline int ReportCellErrors(
    const char* table, const std::vector<eval::CellResult>& results,
    const std::function<std::string(int)>& name) {
  int failures = 0;
  for (int i = 0; i < static_cast<int>(results.size()); ++i) {
    if (results[i].status.ok()) continue;
    ++failures;
    std::fprintf(stderr, "[%s] cell %s failed: %s\n", table,
                 name(i).c_str(), results[i].status.message().c_str());
  }
  return failures;
}

// Deliberately does NOT print --jobs: stdout must be bit-identical across
// job counts (scheduling is an implementation detail of the run, not of
// the result).
inline void PrintHeader(const char* title, const Options& opt) {
  std::printf("== %s ==\n", title);
  std::printf("mode=%s repeats=%d seed=%llu\n\n",
              opt.paper ? "paper" : "fast", Repeats(opt),
              static_cast<unsigned long long>(opt.seed));
}

}  // namespace bgc::bench

#endif  // BGC_BENCH_BENCH_COMMON_H_
