// Reproduces Table 7 (appendix): effect of the victim GNN's depth
// (1/2/3 layers) on CTA and ASR. Condensation: GCond + BGC; datasets Cora,
// Citeseer, Flickr across their three ratios.

#include <iostream>

#include "bench/bench_common.h"
#include "src/attack/bgc.h"
#include "src/data/synthetic.h"

namespace {

using namespace bgc;         // NOLINT
using namespace bgc::bench;  // NOLINT

void Run(Options opt) {
  // Heavy sweep: fast mode defaults to a single repeat (override with
  // --repeats).
  if (opt.repeats == 0 && !opt.paper) opt.repeats = 1;
  PrintHeader("Table 7 — Effect of the number of GNN layers", opt);
  const std::vector<std::string> datasets = {"cora", "citeseer", "flickr"};

  eval::TextTable table({"Dataset", "Ratio (r)", "Layers", "CTA", "ASR"});
  for (const std::string& dataset : datasets) {
    DatasetSetup setup = GetSetup(dataset, opt);
    for (size_t r = 0; r < setup.ratio_labels.size(); ++r) {
      // One attack per repeat, three victims of different depth on top.
      std::vector<std::vector<double>> cta(4), asr(4);
      for (int rep = 0; rep < Repeats(opt); ++rep) {
        const uint64_t seed = opt.seed + rep;
        data::GraphDataset ds =
            data::MakeDataset(setup.preset, seed, setup.scale);
        condense::SourceGraph clean =
            condense::FromTrainView(data::MakeTrainView(ds));
        Rng rng(seed * 40503ULL + 11);
        eval::RunSpec spec =
            MakeSpec(setup, static_cast<int>(r), "gcond", "bgc", opt);
        auto condenser = condense::MakeCondenser("gcond");
        attack::AttackResult attacked = attack::RunBgc(
            clean, ds.num_classes, *condenser, spec.condense,
            spec.attack_cfg, rng);
        for (int layers = 1; layers <= 3; ++layers) {
          eval::VictimConfig vc = spec.victim;
          vc.layers = layers;
          auto victim = eval::TrainVictim(attacked.condensed, vc, rng);
          eval::AttackMetrics m = eval::EvaluateVictim(
              *victim, ds, attacked.generator.get(),
              spec.attack_cfg.target_class);
          cta[layers].push_back(m.cta);
          asr[layers].push_back(m.asr);
        }
      }
      for (int layers = 1; layers <= 3; ++layers) {
        table.AddRow({dataset, setup.ratio_labels[r],
                      "l=" + std::to_string(layers),
                      Pct(ComputeMeanStd(cta[layers])),
                      Pct(ComputeMeanStd(asr[layers]))});
      }
      std::fflush(stdout);
    }
  }
  table.Print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  Run(Parse(argc, argv));
  return 0;
}
