// Reproduces Table 7 (appendix): effect of the victim GNN's depth
// (1/2/3 layers) on CTA and ASR. Condensation: GCond + BGC; datasets Cora,
// Citeseer, Flickr across their three ratios.

#include <iostream>

#include "bench/bench_common.h"
#include "src/attack/bgc.h"
#include "src/data/synthetic.h"

namespace {

using namespace bgc;         // NOLINT
using namespace bgc::bench;  // NOLINT

/// One repeat of one (dataset, ratio) cell: one attack, three victims of
/// different depth on top. Indexed by layer count (1..3).
struct RepeatOut {
  double cta[4] = {0, 0, 0, 0};
  double asr[4] = {0, 0, 0, 0};
};

void Run(Options opt) {
  // Heavy sweep: fast mode defaults to a single repeat (override with
  // --repeats).
  if (opt.repeats == 0 && !opt.paper) opt.repeats = 1;
  PrintHeader("Table 7 — Effect of the number of GNN layers", opt);
  const std::vector<std::string> datasets = {"cora", "citeseer", "flickr"};
  const int repeats = Repeats(opt);

  struct Row {
    std::string dataset, ratio;
    int ratio_idx = 0;
  };
  std::vector<Row> rows;
  for (const std::string& dataset : datasets) {
    DatasetSetup setup = GetSetup(dataset, opt);
    for (size_t r = 0; r < setup.ratio_labels.size(); ++r) {
      rows.push_back({dataset, setup.ratio_labels[r], static_cast<int>(r)});
    }
  }

  const int num_units = static_cast<int>(rows.size()) * repeats;
  auto unit_body = [&](int u) {
    const Row& row = rows[u / repeats];
    const int rep = u % repeats;
    DatasetSetup setup = GetSetup(row.dataset, opt);
    const uint64_t seed = opt.seed + rep;
    data::GraphDataset ds = data::MakeDataset(setup.preset, seed, setup.scale);
    condense::SourceGraph clean =
        condense::FromTrainView(data::MakeTrainView(ds));
    Rng rng(seed * 40503ULL + 11);
    eval::RunSpec spec =
        MakeSpec(setup, row.ratio_idx, "gcond", "bgc", opt);
    auto condenser = condense::MakeCondenser("gcond");
    attack::AttackResult attacked = attack::RunBgc(
        clean, ds.num_classes, *condenser, spec.condense, spec.attack_cfg,
        rng);
    RepeatOut out;
    for (int layers = 1; layers <= 3; ++layers) {
      eval::VictimConfig vc = spec.victim;
      vc.layers = layers;
      auto victim = eval::TrainVictim(attacked.condensed, vc, rng);
      eval::AttackMetrics m = eval::EvaluateVictim(
          *victim, ds, attacked.generator.get(),
          spec.attack_cfg.target_class);
      out.cta[layers] = m.cta;
      out.asr[layers] = m.asr;
    }
    return out;
  };
  const auto slots = eval::RunGrid(Grid(opt), num_units, unit_body);

  eval::TextTable table({"Dataset", "Ratio (r)", "Layers", "CTA", "ASR"});
  for (size_t i = 0; i < rows.size(); ++i) {
    std::vector<std::vector<double>> cta(4), asr(4);
    for (int rep = 0; rep < repeats; ++rep) {
      const auto& slot = slots[i * repeats + rep];
      if (!slot.status.ok()) {
        std::fprintf(stderr, "[table7] %s/%s repeat %d failed: %s\n",
                     rows[i].dataset.c_str(), rows[i].ratio.c_str(), rep,
                     slot.status.message().c_str());
        continue;
      }
      for (int layers = 1; layers <= 3; ++layers) {
        cta[layers].push_back(slot.value.cta[layers]);
        asr[layers].push_back(slot.value.asr[layers]);
      }
    }
    for (int layers = 1; layers <= 3; ++layers) {
      table.AddRow({rows[i].dataset, rows[i].ratio,
                    "l=" + std::to_string(layers),
                    cta[layers].empty() ? std::string("ERR")
                                        : Pct(ComputeMeanStd(cta[layers])),
                    asr[layers].empty() ? std::string("ERR")
                                        : Pct(ComputeMeanStd(asr[layers]))});
    }
  }
  table.Print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  Run(Parse(argc, argv));
  return 0;
}
