// Reproduces Table 4: a single BGC-condensed graph (method GCond) backdoors
// every downstream architecture — GCN, GraphSAGE, SGC, MLP, APPNP,
// ChebyNet. Per dataset the paper fixes one ratio: Cora 2.60%, Citeseer
// 0.90%, Flickr 1.00%, Reddit 0.10%.

#include <iostream>

#include "bench/bench_common.h"
#include "src/attack/bgc.h"
#include "src/data/synthetic.h"

namespace {

using namespace bgc;         // NOLINT
using namespace bgc::bench;  // NOLINT

struct ArchCell {
  std::vector<double> c_cta, cta, asr;
};

/// One repeat of one dataset: attack once, then evaluate every
/// architecture on top. Indexed by architecture.
struct RepeatOut {
  std::vector<double> c_cta, cta, asr;
};

void Run(const Options& opt) {
  PrintHeader("Table 4 — Cross-architecture transfer (GCond + BGC)", opt);
  const std::vector<std::pair<std::string, int>> dataset_ratio = {
      {"cora", 1}, {"citeseer", 0}, {"flickr", 2}, {"reddit", 1}};
  const std::vector<std::string> archs = nn::SupportedArchitectures();
  const int repeats = Repeats(opt);

  // Unit = (dataset, repeat); the per-arch loop stays inside the unit so
  // all architectures share the repeat's attack and clean condensation.
  const int num_units = static_cast<int>(dataset_ratio.size()) * repeats;
  auto unit_body = [&](int u) {
    const size_t d = static_cast<size_t>(u / repeats);
    const int rep = u % repeats;
    DatasetSetup setup = GetSetup(dataset_ratio[d].first, opt);
    const int ratio_idx = dataset_ratio[d].second;
    const uint64_t seed = opt.seed + rep;
    data::GraphDataset ds = data::MakeDataset(setup.preset, seed, setup.scale);
    condense::SourceGraph clean =
        condense::FromTrainView(data::MakeTrainView(ds));
    Rng rng(seed * 1315423911ULL + 5);

    eval::RunSpec spec = MakeSpec(setup, ratio_idx, "gcond", "bgc", opt);
    auto condenser = condense::MakeCondenser("gcond");
    attack::AttackResult attacked =
        attack::RunBgc(clean, ds.num_classes, *condenser, spec.condense,
                       spec.attack_cfg, rng);
    auto clean_condenser = condense::MakeCondenser("gcond");
    Rng crng(seed * 1315423911ULL + 6);
    condense::CondensedGraph clean_condensed = condense::RunCondensation(
        *clean_condenser, clean, ds.num_classes, spec.condense, crng);

    RepeatOut out;
    for (size_t a = 0; a < archs.size(); ++a) {
      eval::VictimConfig vc = spec.victim;
      vc.arch = archs[a];
      auto victim = eval::TrainVictim(attacked.condensed, vc, rng);
      eval::AttackMetrics backdoor = eval::EvaluateVictim(
          *victim, ds, attacked.generator.get(), spec.attack_cfg.target_class);
      auto clean_victim = eval::TrainVictim(clean_condensed, vc, crng);
      eval::AttackMetrics clean_metrics = eval::EvaluateVictim(
          *clean_victim, ds, /*generator=*/nullptr, 0);
      out.c_cta.push_back(clean_metrics.cta);
      out.cta.push_back(backdoor.cta);
      out.asr.push_back(backdoor.asr);
    }
    return out;
  };
  const auto slots = eval::RunGrid(Grid(opt), num_units, unit_body);

  // cells[arch][dataset], filled in fixed (dataset, repeat, arch) order so
  // the table is independent of scheduling.
  std::vector<std::vector<ArchCell>> cells(
      archs.size(), std::vector<ArchCell>(dataset_ratio.size()));
  for (size_t d = 0; d < dataset_ratio.size(); ++d) {
    for (int rep = 0; rep < repeats; ++rep) {
      const auto& slot = slots[d * repeats + rep];
      if (!slot.status.ok()) {
        std::fprintf(stderr, "[table4] %s repeat %d failed: %s\n",
                     dataset_ratio[d].first.c_str(), rep,
                     slot.status.message().c_str());
        continue;
      }
      for (size_t a = 0; a < archs.size(); ++a) {
        cells[a][d].c_cta.push_back(slot.value.c_cta[a]);
        cells[a][d].cta.push_back(slot.value.cta[a]);
        cells[a][d].asr.push_back(slot.value.asr[a]);
      }
    }
  }

  eval::TextTable table(
      {"GNN", "Metrics", "Cora", "Citeseer", "Flickr", "Reddit"});
  for (size_t a = 0; a < archs.size(); ++a) {
    for (const char* metric : {"C-CTA", "CTA", "ASR"}) {
      std::vector<std::string> row = {archs[a], metric};
      for (size_t d = 0; d < dataset_ratio.size(); ++d) {
        const auto& cell = cells[a][d];
        const std::vector<double>& values =
            std::string(metric) == "C-CTA"
                ? cell.c_cta
                : (std::string(metric) == "CTA" ? cell.cta : cell.asr);
        row.push_back(values.empty() ? std::string("ERR")
                                     : Pct(ComputeMeanStd(values)));
      }
      table.AddRow(std::move(row));
    }
  }
  table.Print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  Run(Parse(argc, argv));
  return 0;
}
