// Micro-benchmarks (google-benchmark) of the substrate kernels that
// dominate condensation and attack wall-clock: dense GEMM, sparse SpMM,
// GCN normalization, one gradient-matching epoch, one trigger-generator
// update, a full surrogate training burst — plus the src/store layer:
// bgcbin serialize/deserialize throughput and artifact-cache hit vs
// recompute.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "src/attack/bgc.h"
#include "src/attack/surrogate.h"
#include "src/attack/trigger.h"
#include "src/condense/condenser.h"
#include "src/core/thread_pool.h"
#include "src/data/synthetic.h"
#include "src/store/artifact_cache.h"
#include "src/store/bgcbin.h"
#include "src/store/serialize.h"
#include "src/tensor/matrix_ops.h"

namespace {

using namespace bgc;  // NOLINT

void BM_MatMul(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  Matrix a = Matrix::RandomNormal(n, n, rng);
  Matrix b = Matrix::RandomNormal(n, n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long long>(n) * n *
                          n);
}
BENCHMARK(BM_MatMul)->Arg(64)->Arg(128)->Arg(256);

void BM_SpMM(benchmark::State& state) {
  data::GraphDataset ds = data::MakeDataset("cora-sim", 3);
  graph::CsrMatrix op = graph::GcnNormalize(ds.adj);
  for (auto _ : state) {
    benchmark::DoNotOptimize(op.Multiply(ds.features));
  }
  state.SetItemsProcessed(state.iterations() * op.nnz() *
                          ds.feature_dim());
}
BENCHMARK(BM_SpMM);

// Thread-count sweeps over the pool-backed kernels. Each fixture pins the
// global pool to state.range and restores the BGC_NUM_THREADS/hardware
// default afterwards, so the sweeps don't leak into other benchmarks.
void BM_MatMulThreads(benchmark::State& state) {
  ThreadPool::SetGlobalNumThreads(static_cast<int>(state.range(0)));
  const int n = 256;
  Rng rng(1);
  Matrix a = Matrix::RandomNormal(n, n, rng);
  Matrix b = Matrix::RandomNormal(n, n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long long>(n) * n *
                          n);
  ThreadPool::SetGlobalNumThreads(0);
}
BENCHMARK(BM_MatMulThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_SpMMThreads(benchmark::State& state) {
  ThreadPool::SetGlobalNumThreads(static_cast<int>(state.range(0)));
  data::GraphDataset ds = data::MakeDataset("cora-sim", 3);
  graph::CsrMatrix op = graph::GcnNormalize(ds.adj);
  for (auto _ : state) {
    benchmark::DoNotOptimize(op.Multiply(ds.features));
  }
  state.SetItemsProcessed(state.iterations() * op.nnz() *
                          ds.feature_dim());
  ThreadPool::SetGlobalNumThreads(0);
}
BENCHMARK(BM_SpMMThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_GcnNormalize(benchmark::State& state) {
  data::GraphDataset ds = data::MakeDataset("cora-sim", 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::GcnNormalize(ds.adj));
  }
}
BENCHMARK(BM_GcnNormalize);

void BM_CondensationEpoch(benchmark::State& state) {
  data::GraphDataset ds = data::MakeDataset("cora-sim", 3);
  condense::SourceGraph src =
      condense::FromTrainView(data::MakeTrainView(ds));
  auto condenser = condense::MakeCondenser(
      state.range(0) == 0 ? "gcond" : "gcond-x");
  condense::CondenseConfig cfg;
  cfg.num_condensed = 70;
  Rng rng(4);
  condenser->Initialize(src, ds.num_classes, cfg, rng);
  for (auto _ : state) {
    condenser->Epoch(src);
  }
}
BENCHMARK(BM_CondensationEpoch)->Arg(0)->Arg(1);

void BM_TriggerGeneratorStep(benchmark::State& state) {
  data::GraphDataset ds = data::MakeDataset("cora-sim", 3);
  condense::SourceGraph src =
      condense::FromTrainView(data::MakeTrainView(ds));
  Rng rng(5);
  attack::SurrogateGcn surrogate(ds.feature_dim(), 32, ds.num_classes);
  surrogate.Init(rng);
  attack::AdaptiveTriggerGenerator gen(ds.feature_dim(), 32, 4, 0.05f, 1.0f,
                                       rng);
  std::vector<int> update_nodes;
  for (int i = 0; i < 16; ++i) update_nodes.push_back(i * 7);
  for (auto _ : state) {
    gen.TrainStep(src, surrogate, update_nodes, 0, {2, 16}, rng);
  }
}
BENCHMARK(BM_TriggerGeneratorStep);

void BM_SurrogateTraining(benchmark::State& state) {
  data::GraphDataset ds = data::MakeDataset("cora-sim", 3);
  condense::SourceGraph src =
      condense::FromTrainView(data::MakeTrainView(ds));
  auto condenser = condense::MakeCondenser("gcond-x");
  condense::CondenseConfig cfg;
  cfg.num_condensed = 70;
  cfg.epochs = 10;
  Rng rng(6);
  condense::CondensedGraph g =
      condense::RunCondensation(*condenser, src, ds.num_classes, cfg, rng);
  attack::SurrogateGcn surrogate(ds.feature_dim(), 32, ds.num_classes);
  for (auto _ : state) {
    surrogate.Init(rng);
    surrogate.Train(g, 30, 0.01f, rng);
  }
}
BENCHMARK(BM_SurrogateTraining);

data::GraphDataset BenchDataset() {
  return data::MakeDataset("cora-sim", 3);
}

void BM_DatasetSerialize(benchmark::State& state) {
  data::GraphDataset ds = BenchDataset();
  const std::string path = "/tmp/bgc_bench_dataset.bgcbin";
  for (auto _ : state) {
    Status s = store::SaveDatasetBinary(ds, path);
    benchmark::DoNotOptimize(s.ok());
  }
  std::remove(path.c_str());
}
BENCHMARK(BM_DatasetSerialize);

void BM_DatasetDeserialize(benchmark::State& state) {
  data::GraphDataset ds = BenchDataset();
  const std::string path = "/tmp/bgc_bench_dataset.bgcbin";
  store::SaveDatasetBinary(ds, path);
  for (auto _ : state) {
    benchmark::DoNotOptimize(store::TryLoadDatasetBinary(path));
  }
  std::remove(path.c_str());
}
BENCHMARK(BM_DatasetDeserialize);

void BM_BgcbinContainerParse(benchmark::State& state) {
  data::GraphDataset ds = BenchDataset();
  store::BgcbinWriter writer;
  store::PutMatrix(writer.AddSection("features"), ds.features);
  store::PutCsr(writer.AddSection("adj"), ds.adj);
  const std::string bytes = writer.Serialize();
  for (auto _ : state) {
    // Parse verifies table + per-section CRC32 over the whole payload.
    benchmark::DoNotOptimize(store::BgcbinReader::Parse(bytes, "bench"));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<long long>(bytes.size()));
}
BENCHMARK(BM_BgcbinContainerParse);

// Cache hit vs recompute for one small condensation: the warm path is
// pure deserialization and should be orders of magnitude faster.
condense::CondensedGraph BenchCondense() {
  data::GraphDataset ds = BenchDataset();
  condense::SourceGraph src =
      condense::FromTrainView(data::MakeTrainView(ds));
  auto condenser = condense::MakeCondenser("gcond-x");
  condense::CondenseConfig cfg;
  cfg.num_condensed = 70;
  cfg.epochs = 10;
  Rng rng(7);
  return condense::RunCondensation(*condenser, src, ds.num_classes, cfg, rng);
}

void BM_CondenseRecompute(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(BenchCondense());
  }
}
BENCHMARK(BM_CondenseRecompute);

void BM_CondenseCacheHit(benchmark::State& state) {
  store::ArtifactCache cache("/tmp/bgc_bench_cache");
  const std::string key = "bench-condense-cache-hit";
  cache.GetOrComputeCondensed(key, BenchCondense);  // warm the entry
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.GetOrComputeCondensed(key, BenchCondense));
  }
  std::remove(cache.EntryPath(key).c_str());
}
BENCHMARK(BM_CondenseCacheHit);

}  // namespace

BENCHMARK_MAIN();
