// Micro-benchmarks (google-benchmark) of the substrate kernels that
// dominate condensation and attack wall-clock: dense GEMM, sparse SpMM,
// GCN normalization, one gradient-matching epoch, one trigger-generator
// update, a full surrogate training burst — plus the src/store layer:
// bgcbin serialize/deserialize throughput and artifact-cache hit vs
// recompute.
//
// `--json <path>` switches to a per-SIMD-backend kernel sweep instead of
// the google-benchmark suite: it times GEMM (all three transpose
// variants, plus the forced-axpy legacy path and the BGC_FAST_MATH tier
// where the backend has one), SpMM, elementwise axpy and the max-abs
// reduction under every compiled backend, writes the results (backend,
// shape, GB/s, GFLOP/s) as JSON to <path>, and enforces three throughput
// gates (each auto-skipped with a logged notice when the CPU or the
// binary lacks what it measures):
//   gemm_avx2_speedup_min_2x    — avx2 gemm_nn ≥ 2x scalar gemm_nn
//   gemm_packed_speedup_min_1p5x — avx2 packed gemm_nn ≥ 1.5x the axpy
//                                  row-update path it replaced
//   gemm_fast_speedup_min_1p05x — the FMA fast tile ≥ 1.05x the exact
//                                  tile on the best backend carrying one
// tools/ci.sh runs this mode; bench/BENCH_kernels.json is the committed
// snapshot.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/tensor/simd/simd.h"

#include "src/attack/bgc.h"
#include "src/attack/surrogate.h"
#include "src/attack/trigger.h"
#include "src/condense/condenser.h"
#include "src/core/thread_pool.h"
#include "src/data/synthetic.h"
#include "src/store/artifact_cache.h"
#include "src/store/bgcbin.h"
#include "src/store/serialize.h"
#include "src/tensor/matrix_ops.h"

namespace {

using namespace bgc;  // NOLINT

void BM_MatMul(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  Matrix a = Matrix::RandomNormal(n, n, rng);
  Matrix b = Matrix::RandomNormal(n, n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long long>(n) * n *
                          n);
}
BENCHMARK(BM_MatMul)->Arg(64)->Arg(128)->Arg(256);

void BM_SpMM(benchmark::State& state) {
  data::GraphDataset ds = data::MakeDataset("cora-sim", 3);
  graph::CsrMatrix op = graph::GcnNormalize(ds.adj);
  for (auto _ : state) {
    benchmark::DoNotOptimize(op.Multiply(ds.features));
  }
  state.SetItemsProcessed(state.iterations() * op.nnz() *
                          ds.feature_dim());
}
BENCHMARK(BM_SpMM);

// Thread-count sweeps over the pool-backed kernels. Each fixture pins the
// global pool to state.range and restores the BGC_NUM_THREADS/hardware
// default afterwards, so the sweeps don't leak into other benchmarks.
void BM_MatMulThreads(benchmark::State& state) {
  ThreadPool::SetGlobalNumThreads(static_cast<int>(state.range(0)));
  const int n = 256;
  Rng rng(1);
  Matrix a = Matrix::RandomNormal(n, n, rng);
  Matrix b = Matrix::RandomNormal(n, n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long long>(n) * n *
                          n);
  ThreadPool::SetGlobalNumThreads(0);
}
BENCHMARK(BM_MatMulThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_SpMMThreads(benchmark::State& state) {
  ThreadPool::SetGlobalNumThreads(static_cast<int>(state.range(0)));
  data::GraphDataset ds = data::MakeDataset("cora-sim", 3);
  graph::CsrMatrix op = graph::GcnNormalize(ds.adj);
  for (auto _ : state) {
    benchmark::DoNotOptimize(op.Multiply(ds.features));
  }
  state.SetItemsProcessed(state.iterations() * op.nnz() *
                          ds.feature_dim());
  ThreadPool::SetGlobalNumThreads(0);
}
BENCHMARK(BM_SpMMThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_GcnNormalize(benchmark::State& state) {
  data::GraphDataset ds = data::MakeDataset("cora-sim", 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::GcnNormalize(ds.adj));
  }
}
BENCHMARK(BM_GcnNormalize);

void BM_CondensationEpoch(benchmark::State& state) {
  data::GraphDataset ds = data::MakeDataset("cora-sim", 3);
  condense::SourceGraph src =
      condense::FromTrainView(data::MakeTrainView(ds));
  auto condenser = condense::MakeCondenser(
      state.range(0) == 0 ? "gcond" : "gcond-x");
  condense::CondenseConfig cfg;
  cfg.num_condensed = 70;
  Rng rng(4);
  condenser->Initialize(src, ds.num_classes, cfg, rng);
  for (auto _ : state) {
    condenser->Epoch(src);
  }
}
BENCHMARK(BM_CondensationEpoch)->Arg(0)->Arg(1);

void BM_TriggerGeneratorStep(benchmark::State& state) {
  data::GraphDataset ds = data::MakeDataset("cora-sim", 3);
  condense::SourceGraph src =
      condense::FromTrainView(data::MakeTrainView(ds));
  Rng rng(5);
  attack::SurrogateGcn surrogate(ds.feature_dim(), 32, ds.num_classes);
  surrogate.Init(rng);
  attack::AdaptiveTriggerGenerator gen(ds.feature_dim(), 32, 4, 0.05f, 1.0f,
                                       rng);
  std::vector<int> update_nodes;
  for (int i = 0; i < 16; ++i) update_nodes.push_back(i * 7);
  for (auto _ : state) {
    gen.TrainStep(src, surrogate, update_nodes, 0, {2, 16}, rng);
  }
}
BENCHMARK(BM_TriggerGeneratorStep);

void BM_SurrogateTraining(benchmark::State& state) {
  data::GraphDataset ds = data::MakeDataset("cora-sim", 3);
  condense::SourceGraph src =
      condense::FromTrainView(data::MakeTrainView(ds));
  auto condenser = condense::MakeCondenser("gcond-x");
  condense::CondenseConfig cfg;
  cfg.num_condensed = 70;
  cfg.epochs = 10;
  Rng rng(6);
  condense::CondensedGraph g =
      condense::RunCondensation(*condenser, src, ds.num_classes, cfg, rng);
  attack::SurrogateGcn surrogate(ds.feature_dim(), 32, ds.num_classes);
  for (auto _ : state) {
    surrogate.Init(rng);
    surrogate.Train(g, 30, 0.01f, rng);
  }
}
BENCHMARK(BM_SurrogateTraining);

data::GraphDataset BenchDataset() {
  return data::MakeDataset("cora-sim", 3);
}

void BM_DatasetSerialize(benchmark::State& state) {
  data::GraphDataset ds = BenchDataset();
  const std::string path = "/tmp/bgc_bench_dataset.bgcbin";
  for (auto _ : state) {
    Status s = store::SaveDatasetBinary(ds, path);
    benchmark::DoNotOptimize(s.ok());
  }
  std::remove(path.c_str());
}
BENCHMARK(BM_DatasetSerialize);

void BM_DatasetDeserialize(benchmark::State& state) {
  data::GraphDataset ds = BenchDataset();
  const std::string path = "/tmp/bgc_bench_dataset.bgcbin";
  store::SaveDatasetBinary(ds, path);
  for (auto _ : state) {
    benchmark::DoNotOptimize(store::TryLoadDatasetBinary(path));
  }
  std::remove(path.c_str());
}
BENCHMARK(BM_DatasetDeserialize);

void BM_BgcbinContainerParse(benchmark::State& state) {
  data::GraphDataset ds = BenchDataset();
  store::BgcbinWriter writer;
  store::PutMatrix(writer.AddSection("features"), ds.features);
  store::PutCsr(writer.AddSection("adj"), ds.adj);
  const std::string bytes = writer.Serialize();
  for (auto _ : state) {
    // Parse verifies table + per-section CRC32 over the whole payload.
    benchmark::DoNotOptimize(store::BgcbinReader::Parse(bytes, "bench"));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<long long>(bytes.size()));
}
BENCHMARK(BM_BgcbinContainerParse);

// Cache hit vs recompute for one small condensation: the warm path is
// pure deserialization and should be orders of magnitude faster.
condense::CondensedGraph BenchCondense() {
  data::GraphDataset ds = BenchDataset();
  condense::SourceGraph src =
      condense::FromTrainView(data::MakeTrainView(ds));
  auto condenser = condense::MakeCondenser("gcond-x");
  condense::CondenseConfig cfg;
  cfg.num_condensed = 70;
  cfg.epochs = 10;
  Rng rng(7);
  return condense::RunCondensation(*condenser, src, ds.num_classes, cfg, rng);
}

void BM_CondenseRecompute(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(BenchCondense());
  }
}
BENCHMARK(BM_CondenseRecompute);

void BM_CondenseCacheHit(benchmark::State& state) {
  store::ArtifactCache cache("/tmp/bgc_bench_cache");
  const std::string key = "bench-condense-cache-hit";
  cache.GetOrComputeCondensed(key, BenchCondense);  // warm the entry
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.GetOrComputeCondensed(key, BenchCondense));
  }
  std::remove(cache.EntryPath(key).c_str());
}
BENCHMARK(BM_CondenseCacheHit);

// ---------------------------------------------------------------------
// --json mode: per-SIMD-backend kernel sweep + AVX2 speedup gate.
// ---------------------------------------------------------------------

struct KernelRow {
  const char* kernel;
  const char* backend;
  std::string shape;
  double seconds;   // best-of-reps wall time for one sweep call
  double gflops;
  double gbps;
};

// Best-of-`reps` wall time of fn() after one warm-up call. Best-of (not
// mean) because the only noise source on a quiet machine is additive.
template <typename Fn>
double BestSeconds(int reps, Fn fn) {
  using clock = std::chrono::steady_clock;
  fn();
  double best = 1e30;
  for (int r = 0; r < reps; ++r) {
    auto t0 = clock::now();
    fn();
    double s = std::chrono::duration<double>(clock::now() - t0).count();
    if (s < best) best = s;
  }
  return best;
}

KernelRow MeasureRow(const char* kernel, const char* backend,
                     std::string shape, double flops, double bytes,
                     double seconds) {
  return {kernel,          backend,
          std::move(shape), seconds,
          flops / seconds / 1e9, bytes / seconds / 1e9};
}

// Times every kernel family under backend `b` (the table must be
// available) and appends rows.
void SweepBackend(simd::Backend b, std::vector<KernelRow>* rows) {
  const char* name = simd::BackendName(b);
  simd::Backend prev = simd::SetBackendForTesting(b);
  Rng rng(11);

  const int n = 256;
  Matrix ga = Matrix::RandomNormal(n, n, rng);
  Matrix gb = Matrix::RandomNormal(n, n, rng);
  const double gemm_flops = 2.0 * n * n * n;
  const double gemm_bytes = 4.0 * (2.0 * n * n + 2.0 * n * n);
  char shape[64];
  std::snprintf(shape, sizeof(shape), "%dx%dx%d", n, n, n);
  rows->push_back(MeasureRow(
      "gemm_nn", name, shape, gemm_flops, gemm_bytes,
      BestSeconds(5, [&] { benchmark::DoNotOptimize(MatMul(ga, gb)); })));
  // The same product through the pre-packing axpy row-update path, for
  // the packed-vs-axpy gate (at 256^3 the auto heuristic always picks
  // the packed path, so gemm_nn above IS the packed number).
  {
    GemmPath prev_path = SetGemmPathForTesting(GemmPath::kAxpy);
    rows->push_back(MeasureRow(
        "gemm_nn_axpy", name, shape, gemm_flops, gemm_bytes,
        BestSeconds(5, [&] { benchmark::DoNotOptimize(MatMul(ga, gb)); })));
    SetGemmPathForTesting(prev_path);
  }
  // The BGC_FAST_MATH tier (fused mul+add micro-kernel), only where this
  // backend carries a fast tile the CPU can run — no row means no tier.
  const simd::KernelTable* table = simd::TableFor(b);
  if (table != nullptr && table->gemm_tile_fast != nullptr &&
      simd::FastTileCpuSupported(b)) {
    const bool prev_fast = simd::SetFastMathForTesting(true);
    rows->push_back(MeasureRow(
        "gemm_nn_fast", name, shape, gemm_flops, gemm_bytes,
        BestSeconds(5, [&] { benchmark::DoNotOptimize(MatMul(ga, gb)); })));
    simd::SetFastMathForTesting(prev_fast);
  }
  rows->push_back(MeasureRow(
      "gemm_tn", name, shape, gemm_flops, gemm_bytes,
      BestSeconds(5, [&] { benchmark::DoNotOptimize(MatMulTransA(ga, gb)); })));
  rows->push_back(MeasureRow(
      "gemm_nt", name, shape, gemm_flops, gemm_bytes,
      BestSeconds(5, [&] { benchmark::DoNotOptimize(MatMulTransB(ga, gb)); })));

  data::GraphDataset ds = data::MakeDataset("cora-sim", 3);
  graph::CsrMatrix op = graph::GcnNormalize(ds.adj);
  const int m = ds.feature_dim();
  const double spmm_flops = 2.0 * op.nnz() * m;
  const double spmm_bytes = 4.0 * (2.0 * op.nnz() + 2.0 * op.nnz() * m);
  std::snprintf(shape, sizeof(shape), "nnz=%d,m=%d", op.nnz(), m);
  rows->push_back(MeasureRow(
      "spmm", name, shape, spmm_flops, spmm_bytes,
      BestSeconds(5, [&] { benchmark::DoNotOptimize(op.Multiply(ds.features)); })));

  const int en = 1 << 16;
  const int eiters = 64;
  std::vector<float> ec(en, 1.0f), ex(en, 0.5f);
  std::snprintf(shape, sizeof(shape), "n=%d", en);
  rows->push_back(MeasureRow(
      "axpy", name, shape, 2.0 * en * eiters, 12.0 * en * eiters,
      BestSeconds(5, [&] {
        for (int i = 0; i < eiters; ++i) {
          simd::Kernels().axpy(ec.data(), ex.data(), 1e-9f, en);
        }
        benchmark::DoNotOptimize(ec.data());
      })));
  rows->push_back(MeasureRow(
      "max_abs", name, shape, 1.0 * en * eiters, 4.0 * en * eiters,
      BestSeconds(5, [&] {
        float acc = 0.0f;
        for (int i = 0; i < eiters; ++i) {
          acc += simd::Kernels().max_abs(ex.data(), en);
        }
        benchmark::DoNotOptimize(acc);
      })));

  simd::SetBackendForTesting(prev);
}

double KernelGflops(const std::vector<KernelRow>& rows, const char* kernel,
                    const char* backend) {
  double best = 0.0;
  for (const KernelRow& r : rows) {
    if (std::strcmp(r.kernel, kernel) == 0 &&
        std::strcmp(r.backend, backend) == 0 && r.gflops > best) {
      best = r.gflops;
    }
  }
  return best;
}

// One pass/fail/skipped entry in the JSON "gates" array.
struct GateResult {
  const char* name;
  const char* status;  // "pass" | "fail" | "skipped"
  double speedup = 0.0;
  double min = 0.0;
  std::string reason;  // only for "skipped"
};

GateResult SpeedupGate(const char* name, double numerator,
                       double denominator, double min,
                       const char* description) {
  GateResult g{name, "fail", 0.0, min, ""};
  g.speedup = numerator / denominator;
  g.status = g.speedup >= min ? "pass" : "fail";
  std::fprintf(stderr, "bench: %s gate %s: %s %.2fx (>= %.2fx required)\n",
               name, g.speedup >= min ? "PASS" : "FAIL", description,
               g.speedup, min);
  return g;
}

GateResult SkippedGate(const char* name, std::string reason) {
  std::fprintf(stderr, "bench: %s gate SKIPPED: %s\n", name, reason.c_str());
  return GateResult{name, "skipped", 0.0, 0.0, std::move(reason)};
}

int RunKernelJsonSweep(const char* path) {
  std::vector<KernelRow> rows;
  std::vector<simd::Backend> swept;
  for (simd::Backend b :
       {simd::Backend::kScalar, simd::Backend::kSse2, simd::Backend::kAvx2,
        simd::Backend::kAvx512}) {
    if (simd::TableFor(b) == nullptr) continue;
    std::fprintf(stderr, "bench: sweeping backend %s\n",
                 simd::BackendName(b));
    SweepBackend(b, &rows);
    swept.push_back(b);
  }

  const bool have_avx2 =
      simd::TableFor(simd::Backend::kAvx2) != nullptr;
  const std::string no_avx2_reason =
      simd::Compiled(simd::Backend::kAvx2)
          ? "cpuid reports no AVX2 on this machine"
          : "binary compiled without the AVX2 backend";

  std::vector<GateResult> gates;
  // 1. ≥2x AVX2-vs-scalar GEMM throughput (the historical gate).
  if (!have_avx2) {
    gates.push_back(
        SkippedGate("gemm_avx2_speedup_min_2x", no_avx2_reason));
  } else {
    gates.push_back(SpeedupGate(
        "gemm_avx2_speedup_min_2x", KernelGflops(rows, "gemm_nn", "avx2"),
        KernelGflops(rows, "gemm_nn", "scalar"), 2.0,
        "gemm_nn avx2 vs scalar"));
  }
  // 2. Packed/register-tiled path ≥1.5x the axpy row-update path it
  // replaced, judged on avx2 where the register blocking pays most.
  if (!have_avx2) {
    gates.push_back(
        SkippedGate("gemm_packed_speedup_min_1p5x", no_avx2_reason));
  } else {
    gates.push_back(SpeedupGate(
        "gemm_packed_speedup_min_1p5x",
        KernelGflops(rows, "gemm_nn", "avx2"),
        KernelGflops(rows, "gemm_nn_axpy", "avx2"), 1.5,
        "packed gemm_nn avx2 vs forced-axpy"));
  }
  // 3. The opt-in fast tier must actually buy something: best fast row
  // vs the same backend's exact row. Skipped when no swept backend has a
  // fast tile this CPU can run (gemm_nn_fast rows exist only then).
  {
    const char* fast_backend = nullptr;
    double fast_best = 0.0;
    for (simd::Backend b : swept) {
      double g = KernelGflops(rows, "gemm_nn_fast", simd::BackendName(b));
      if (g > fast_best) {
        fast_best = g;
        fast_backend = simd::BackendName(b);
      }
    }
    if (fast_backend == nullptr) {
      gates.push_back(SkippedGate(
          "gemm_fast_speedup_min_1p05x",
          "no compiled backend has a fast GEMM tile this CPU supports "
          "(FMA required)"));
    } else {
      char desc[96];
      std::snprintf(desc, sizeof(desc), "gemm_nn fast vs exact on %s",
                    fast_backend);
      gates.push_back(SpeedupGate(
          "gemm_fast_speedup_min_1p05x", fast_best,
          KernelGflops(rows, "gemm_nn", fast_backend), 1.05, desc));
    }
  }

  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench: cannot open %s for writing\n", path);
    return 1;
  }
  std::fprintf(f, "{\n  \"schema\": \"bgc-bench-kernels-v2\",\n");
  std::fprintf(f, "  \"backends\": [");
  for (size_t i = 0; i < swept.size(); ++i) {
    std::fprintf(f, "%s\"%s\"", i ? ", " : "",
                 simd::BackendName(swept[i]));
  }
  std::fprintf(f, "],\n  \"results\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const KernelRow& r = rows[i];
    std::fprintf(f,
                 "    {\"kernel\": \"%s\", \"backend\": \"%s\", "
                 "\"shape\": \"%s\", \"seconds\": %.6e, "
                 "\"gflops\": %.3f, \"gbps\": %.3f}%s\n",
                 r.kernel, r.backend, r.shape.c_str(), r.seconds, r.gflops,
                 r.gbps, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"gates\": [\n");
  bool any_fail = false;
  for (size_t i = 0; i < gates.size(); ++i) {
    const GateResult& g = gates[i];
    any_fail = any_fail || std::strcmp(g.status, "fail") == 0;
    if (std::strcmp(g.status, "skipped") == 0) {
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"status\": \"skipped\", "
                   "\"reason\": \"%s\"}%s\n",
                   g.name, g.reason.c_str(),
                   i + 1 < gates.size() ? "," : "");
    } else {
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"status\": \"%s\", "
                   "\"speedup\": %.3f, \"min\": %.2f}%s\n",
                   g.name, g.status, g.speedup, g.min,
                   i + 1 < gates.size() ? "," : "");
    }
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::fprintf(stderr, "bench: wrote %s (%zu rows, %zu gates)\n", path,
               rows.size(), gates.size());
  return any_fail ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      args.push_back(argv[i]);
    }
  }
  if (json_path != nullptr) return RunKernelJsonSweep(json_path);
  int bargc = static_cast<int>(args.size());
  benchmark::Initialize(&bargc, args.data());
  if (benchmark::ReportUnrecognizedArguments(bargc, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
